"""Disk model: seek latency plus serialized bandwidth.

Models the 400 GB SSDs from the paper's CloudLab nodes.  Sequential
journal writes see near-full bandwidth; the per-request ``seek`` term
penalizes small random I/O, which is what makes Nonvolatile Apply's
read-modify-write loop expensive.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.engine import Engine, Event
from repro.sim.resources import Resource

__all__ = ["Disk", "NVRam"]


class Disk:
    """A single device with a serialized queue.

    Parameters mirror a modest SATA SSD by default: 500 MB/s bandwidth
    and 100 µs access latency.
    """

    def __init__(
        self,
        engine: Engine,
        bandwidth_bps: float = 500e6,
        seek_s: float = 100e-6,
        name: str = "disk",
    ):
        if bandwidth_bps <= 0 or seek_s < 0:
            raise ValueError("bandwidth must be > 0 and seek >= 0")
        self.engine = engine
        self.bandwidth_bps = bandwidth_bps
        self.seek_s = seek_s
        self.name = name
        self._queue = Resource(engine, capacity=1, name=f"{name}.queue")
        self.bytes_written = 0
        self.bytes_read = 0
        self.requests = 0

    def io_time(self, nbytes: int) -> float:
        """Unloaded service time for one request of ``nbytes``."""
        return self.seek_s + nbytes / self.bandwidth_bps

    def _io(self, nbytes: int, extra_s: float = 0.0) -> Generator[Event, None, None]:
        if nbytes < 0:
            raise ValueError("negative I/O size")
        self.requests += 1
        req = self._queue.request()
        yield req
        try:
            yield self.engine.sleep(self.io_time(nbytes) + extra_s)
        finally:
            self._queue.release(req)

    def write(self, nbytes: int) -> Generator[Event, None, None]:
        """Process body for a write of ``nbytes``."""
        self.bytes_written += nbytes
        yield from self._io(nbytes)

    def read(self, nbytes: int) -> Generator[Event, None, None]:
        """Process body for a read of ``nbytes``."""
        self.bytes_read += nbytes
        yield from self._io(nbytes)

    def utilization(self, since: float = 0.0) -> float:
        return self._queue.utilization(since)

    def busy_seconds(self) -> float:
        """Cumulative busy integral (for windowed utilization deltas)."""
        return self._queue.busy_seconds()


class NVRam(Disk):
    """Byte-addressable persistent memory (DurableFS-style NVRAM).

    Same serialized-queue interface as :class:`Disk`, but with the
    latency/ordering profile of persistent memory rather than a block
    device: microsecond access instead of a 100 µs seek, several GB/s of
    bandwidth, and — the ordering difference — an explicit *flush
    barrier* charged per write (the cache-line writeback + fence a PM
    store sequence needs before the data is actually durable).  Reads
    pay only the access latency.
    """

    def __init__(
        self,
        engine: Engine,
        bandwidth_bps: float = 2e9,
        access_s: float = 2e-6,
        flush_s: float = 5e-6,
        name: str = "nvram",
    ):
        super().__init__(engine, bandwidth_bps=bandwidth_bps,
                         seek_s=access_s, name=name)
        if flush_s < 0:
            raise ValueError("flush barrier cost must be >= 0")
        self.flush_s = flush_s
        self.flushes = 0

    def write(self, nbytes: int) -> Generator[Event, None, None]:
        """Write + persist barrier: the store is durable only after the
        writeback/fence sequence, so every write pays ``flush_s``."""
        self.flushes += 1
        self.bytes_written += nbytes
        yield from self._io(nbytes, extra_s=self.flush_s)
