"""Create-heavy workloads: N clients, private directories.

"We scale the number of parallel clients each doing 100K operations
because 100K is the maximum recommended size of a directory in CephFS"
(paper §V).  Clients run in non-materialized (counted) mode so that
paper-scale runs — 20 x 100K creates — stay tractable on the simulator
host; the simulated per-op costs are identical to materialized runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List

from repro.cluster import Cluster
from repro.sim.engine import Event

__all__ = ["CreateHeavyResult", "parallel_creates_rpc", "parallel_creates_decoupled"]


@dataclass
class CreateHeavyResult:
    """Timing of one parallel-create job."""

    clients: int
    ops_per_client: int
    client_times: List[float] = field(default_factory=list)
    create_time: float = 0.0  # parallel create phase (job view)
    merge_time: float = 0.0   # sequential merge phase, if any
    mds_rpcs: int = 0

    @property
    def job_time(self) -> float:
        return self.create_time + self.merge_time

    @property
    def total_ops(self) -> int:
        return self.clients * self.ops_per_client

    @property
    def job_throughput(self) -> float:
        """Total job ops/s (the metadata server's perspective, Fig 6a)."""
        return self.total_ops / self.job_time if self.job_time else 0.0

    @property
    def slowest_client_time(self) -> float:
        return max(self.client_times) if self.client_times else self.job_time


def parallel_creates_rpc(
    cluster: Cluster,
    clients: int,
    ops_per_client: int,
    batch: int = 100,
) -> Generator[Event, None, CreateHeavyResult]:
    """N RPC clients create in private directories (process body)."""
    result = CreateHeavyResult(clients=clients, ops_per_client=ops_per_client)
    start = cluster.engine.now

    def worker(idx: int):
        client = cluster.new_client()
        t0 = cluster.engine.now
        resp = yield cluster.engine.process(
            client.create_many(f"/dirs/dir{idx}", ops_per_client, batch=batch)
        )
        if not resp.ok:
            raise RuntimeError(resp.error)
        result.client_times.append(cluster.engine.now - t0)

    procs = [
        cluster.engine.process(worker(i), name=f"creator{i}")
        for i in range(clients)
    ]
    yield cluster.engine.all_of(procs)
    result.create_time = cluster.engine.now - start
    result.mds_rpcs = cluster.mds.stats.counter("rpcs").value
    return result


def parallel_creates_decoupled(
    cluster: Cluster,
    clients: int,
    ops_per_client: int,
    persist_each: bool = True,
    merge: bool = False,
) -> Generator[Event, None, CreateHeavyResult]:
    """N decoupled clients create locally; optionally merge at the MDS.

    With ``merge``, all client journals land on the metadata server at
    the same time — the paper's pessimistic "decoupled: create+merge"
    scenario (Figure 6a).
    """
    from repro.core.merge import merge_journal

    result = CreateHeavyResult(clients=clients, ops_per_client=ops_per_client)
    start = cluster.engine.now
    dclients = [
        cluster.new_decoupled_client(persist_each=persist_each)
        for _ in range(clients)
    ]

    def worker(idx: int):
        t0 = cluster.engine.now
        yield cluster.engine.process(
            dclients[idx].create_many(f"/dirs/dir{idx}", ops_per_client)
        )
        result.client_times.append(cluster.engine.now - t0)

    procs = [
        cluster.engine.process(worker(i), name=f"dcreator{i}")
        for i in range(clients)
    ]
    yield cluster.engine.all_of(procs)
    result.create_time = cluster.engine.now - start

    if merge:
        merge_start = cluster.engine.now
        merges = [
            cluster.engine.process(
                merge_journal(
                    cluster.mds,
                    f"/dirs/dir{i}",
                    dclients[i].client_id,
                    count=dclients[i].counted_ops or None,
                    events=(dclients[i].journal.events or None)
                    if not dclients[i].counted_ops
                    else None,
                ),
                name=f"merge{i}",
            )
            for i in range(clients)
        ]
        yield cluster.engine.all_of(merges)
        result.merge_time = cluster.engine.now - merge_start
    return result
