"""Interference workloads (Figures 3b, 3c, 6b).

"Clients create 100K files in their own directories while another
client interferes by creating 1000 files in each directory."  The
interfering client revokes the owners' directory capabilities, forcing
every later create to pay an extra remote ``lookup``.

Under ``interfere=block`` the interferer's requests bounce with -EBUSY
(cheap rejects), so the owners keep their capabilities — Cudele's
isolation knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.cluster import Cluster
from repro.core.policy import SubtreePolicy
from repro.sim.engine import Event, Timeout
from repro.sim.rng import RngStream

__all__ = ["InterferenceResult", "run_interference"]


@dataclass
class InterferenceResult:
    """Per-run measurements for one interference scenario."""

    clients: int
    ops_per_client: int
    mode: str  # "none" | "allow" | "block"
    client_times: List[float] = field(default_factory=list)
    interferer_time: float = 0.0
    interferer_errors: int = 0
    revocations: int = 0
    lookups: int = 0
    rejects: int = 0
    #: (time, cumulative count) samples for Figure 3c.
    lookup_samples: List[tuple] = field(default_factory=list)
    create_samples: List[tuple] = field(default_factory=list)

    @property
    def slowest_client_time(self) -> float:
        return max(self.client_times)


def run_interference(
    cluster: Cluster,
    clients: int,
    ops_per_client: int,
    mode: str = "allow",
    interfere_ops: int = 1000,
    interferer_start_frac: float = 0.165,
    batch: int = 100,
    sample_interval_s: Optional[float] = None,
) -> Generator[Event, None, InterferenceResult]:
    """Run the interference scenario (process body).

    ``mode``: ``none`` (no interferer), ``allow`` (default file-system
    behaviour) or ``block`` (Cudele returns -EBUSY to the interferer).
    ``interferer_start_frac`` positions the interferer's start relative
    to the expected solo run time — the paper launches it "at 30
    seconds" of a ~182 s run.
    """
    if mode not in ("none", "allow", "block"):
        raise ValueError(f"unknown interference mode {mode!r}")
    result = InterferenceResult(
        clients=clients, ops_per_client=ops_per_client, mode=mode
    )
    engine = cluster.engine

    # Each owner's directory is a policy-carrying subtree; under block
    # the owner is recorded so the MDS can reject everyone else.
    owners = [cluster.new_client() for _ in range(clients)]
    if mode == "block":
        for i, owner in enumerate(owners):
            policy = SubtreePolicy(interfere="block",
                                   owner_client=owner.client_id)
            yield engine.process(
                cluster.mon.set_subtree(f"/dirs/dir{i}", policy)
            )

    start = engine.now
    # Expected solo duration at the journal-on single-client rate.
    expected_solo = ops_per_client / 520.0
    interferer_start = expected_solo * interferer_start_frac

    def owner_worker(idx: int):
        t0 = engine.now
        resp = yield engine.process(
            owners[idx].create_many(f"/dirs/dir{idx}", ops_per_client, batch=batch)
        )
        if not resp.ok:
            raise RuntimeError(resp.error)
        result.client_times.append(engine.now - t0)

    def interferer_worker():
        client = cluster.new_client()
        yield Timeout(engine, interferer_start)
        t0 = engine.now
        dirs = list(range(clients))
        RngStream(cluster.seed, "interferer").shuffle(dirs)
        for d in dirs:
            resp = yield engine.process(
                client.create_many(f"/dirs/dir{d}", interfere_ops, batch=batch)
            )
            if not resp.ok:
                result.interferer_errors += 1
        result.interferer_time = engine.now - t0

    sampling = [True]

    def sampler():
        while sampling[0]:
            yield Timeout(engine, sample_interval_s)
            result.lookup_samples.append(
                (engine.now - start, cluster.mds.stats.counter("lookups").value)
            )
            result.create_samples.append(
                (engine.now - start, cluster.mds.stats.counter("creates").value)
            )

    procs = [
        engine.process(owner_worker(i), name=f"owner{i}") for i in range(clients)
    ]
    if mode != "none":
        engine.process(interferer_worker(), name="interferer")
    if sample_interval_s:
        engine.process(sampler(), name="sampler")
    yield engine.all_of(procs)
    sampling[0] = False

    result.revocations = cluster.mds.stats.counter("revocations").value
    result.lookups = cluster.mds.stats.counter("lookups").value
    result.rejects = cluster.mds.stats.counter("rejects").value
    return result
