"""Synthetic workloads from the paper's evaluation.

* :mod:`~repro.workloads.createheavy` — N clients each creating files in
  a private directory (checkpoint-restart / untar pattern; Figures 3a
  and 6a).
* :mod:`~repro.workloads.interference` — private-directory creates with
  an interfering client touching every directory (Figures 3b/3c/6b).
* :mod:`~repro.workloads.compile_wl` — the untar/configure/make phase
  structure of a kernel compile (Figure 2's utilization trace).
"""

from repro.workloads.createheavy import (
    CreateHeavyResult,
    parallel_creates_decoupled,
    parallel_creates_rpc,
)
from repro.workloads.interference import InterferenceResult, run_interference
from repro.workloads.compile_wl import CompilePhase, CompileResult, run_compile

__all__ = [
    "CreateHeavyResult",
    "parallel_creates_rpc",
    "parallel_creates_decoupled",
    "InterferenceResult",
    "run_interference",
    "CompilePhase",
    "CompileResult",
    "run_compile",
]
