"""General metadata-workload generation.

The evaluation's synthetic workloads (create-heavy, interference,
compile phases) are hand-shaped; this module generates *parameterized*
traces for exploring beyond the paper: a directory-popularity
distribution (uniform or Zipf — metadata traces are notoriously
skewed [Abad et al., UCC'12, cited as paper ref 28]) combined with an
operation mix, replayable against any client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Iterator, List, Tuple

import numpy as np

from repro.client.client import Client
from repro.sim.engine import Event
from repro.sim.rng import RngStream

__all__ = ["OpMix", "TraceConfig", "generate_trace", "replay_trace"]


@dataclass(frozen=True)
class OpMix:
    """Relative weights of metadata operation types."""

    create: float = 1.0
    lookup: float = 0.0
    stat: float = 0.0
    ls: float = 0.0

    def __post_init__(self) -> None:
        if min(self.create, self.lookup, self.stat, self.ls) < 0:
            raise ValueError("op weights must be non-negative")
        if self.total == 0:
            raise ValueError("at least one op weight must be positive")

    @property
    def total(self) -> float:
        return self.create + self.lookup + self.stat + self.ls

    def probabilities(self) -> List[Tuple[str, float]]:
        return [
            (name, weight / self.total)
            for name, weight in (
                ("create", self.create),
                ("lookup", self.lookup),
                ("stat", self.stat),
                ("ls", self.ls),
            )
            if weight > 0
        ]


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a generated trace."""

    ops: int
    dirs: int = 16
    #: 0.0 = uniform directory popularity; >0 = Zipf exponent (1.0 is
    #: the classic heavy skew seen in big-storage metadata traces).
    zipf_s: float = 0.0
    mix: OpMix = field(default_factory=OpMix)
    root: str = "/trace"

    def __post_init__(self) -> None:
        if self.ops < 1 or self.dirs < 1:
            raise ValueError("ops and dirs must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf exponent must be >= 0")


def _dir_weights(config: TraceConfig) -> np.ndarray:
    ranks = np.arange(1, config.dirs + 1, dtype=float)
    if config.zipf_s == 0:
        weights = np.ones_like(ranks)
    else:
        weights = ranks ** (-config.zipf_s)
    return weights / weights.sum()


def generate_trace(
    config: TraceConfig, rng: RngStream
) -> Iterator[Tuple[str, str]]:
    """Yield ``(op, dir_path)`` pairs per the configured distributions."""
    weights = _dir_weights(config)
    ops_probs = config.mix.probabilities()
    op_names = [n for n, _ in ops_probs]
    op_p = np.array([p for _, p in ops_probs])
    # The child seed comes from an *integer* draw: truncating a float
    # uniform to int(·) collapses the 2**31 seed space onto the ~2**31
    # representable products of a 53-bit mantissa, so nearby RngStream
    # states could collide on the same numpy seed (and a float-rounding
    # change would silently reshuffle every trace).
    gen = np.random.default_rng(rng.integers(0, 2**63))
    dir_idx = gen.choice(config.dirs, size=config.ops, p=weights)
    op_idx = gen.choice(len(op_names), size=config.ops, p=op_p)
    for d, o in zip(dir_idx, op_idx):
        yield op_names[o], f"{config.root}/dir{d}"


def replay_trace(
    client: Client, config: TraceConfig, rng: RngStream, batch: int = 50
) -> Generator[Event, None, Dict[str, int]]:
    """Replay a generated trace through a client (process body).

    Consecutive same-op/same-dir entries are batched; returns op counts.
    The counts are the accounting contract: every counted op corresponds
    to an op actually issued to (and serviced by) the MDS — a coalesced
    run of ``n`` stat/ls entries goes out as one ``count=n`` request,
    exactly like the lookup path, never as one count-1 request recorded
    as ``n`` ops.
    """
    counts: Dict[str, int] = {}
    pending: List[Tuple[str, str]] = []

    def flush():
        if not pending:
            return
        op, path = pending[0]
        n = len(pending)
        pending.clear()
        counts[op] = counts.get(op, 0) + n
        if op == "create":
            return client.create_many(path, n, batch=batch)
        from repro.mds.server import Request

        if op == "lookup":
            return client._call(
                Request("lookup", path + "/probe", client.client_id, count=n),
                op_count=n,
            )
        if op == "stat":
            return client._call(
                Request("stat", path, client.client_id, count=n), op_count=n
            )
        return client._call(
            Request("ls", path, client.client_id, count=n), op_count=n
        )

    for entry in generate_trace(config, rng):
        if pending and (entry != pending[0] or len(pending) >= batch):
            gen = flush()
            if gen is not None:
                yield client.engine.process(gen)
        pending.append(entry)
    gen = flush()
    if gen is not None:
        yield client.engine.process(gen)
    return counts
