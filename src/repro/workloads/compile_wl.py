"""The kernel-compile phase workload (Figure 2).

The paper traces a Linux-kernel compile in a CephFS mount and shows
that the *untar* phase — "characterized by many creates" — drives the
highest combined CPU/network/disk utilization on the metadata server,
"because of the number of RPCs needed for consistency and durability".

The synthetic equivalent preserves that structure:

* ``untar``     — a flash crowd of creates: several parallel extraction
  streams with no think time (tar feeds the file system as fast as the
  metadata path allows).  Every create journals ~2.5 KB to the object
  store, so disk and network load ride along with MDS CPU.
* ``configure`` — a single probe stream: existence checks with think
  time between them (configure scripts compute between stats), few
  creates.
* ``make``      — a few parallel compile streams, each alternating
  header stats and object-file creates with compilation think time.

Each phase reports MDS CPU utilization, metadata network traffic and
object-store disk utilization — the quantities Figure 2 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List

from repro.cluster import Cluster
from repro.sim.engine import Event, Timeout

__all__ = ["CompilePhase", "CompileResult", "run_compile"]

#: Think time between configure probes (script execution, seconds).
CONFIGURE_THINK_S = 20e-3
#: Think time per compiled object (compilation itself, seconds).
MAKE_THINK_S = 30e-3
#: Parallel streams per phase.
UNTAR_STREAMS = 8
MAKE_STREAMS = 4


@dataclass
class CompilePhase:
    """Utilization measurements for one compile phase."""

    name: str
    ops: int
    duration_s: float
    mds_cpu_util: float
    net_bytes: int
    disk_util: float

    @property
    def net_mbps(self) -> float:
        return self.net_bytes / max(self.duration_s, 1e-9) / 1e6

    @property
    def combined_utilization(self) -> float:
        """CPU + disk utilization (the 'combined resource usage' notion)."""
        return self.mds_cpu_util + self.disk_util


@dataclass
class CompileResult:
    """Per-phase measurements for one simulated compile."""

    phases: List[CompilePhase] = field(default_factory=list)

    def phase(self, name: str) -> CompilePhase:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(name)


def _disk_busy(cluster: Cluster) -> float:
    return sum(o.disk.busy_seconds() for o in cluster.objstore.osds)


def run_compile(
    cluster: Cluster,
    scale: int = 10_000,
    dirs: int = 20,
    batch: int = 100,
) -> Generator[Event, None, CompileResult]:
    """Run the three compile phases back-to-back (process body).

    ``scale`` is the number of source files: untar creates them all in
    parallel streams, configure probes ~10% of them, make compiles ~70%
    of them into object files.
    """
    engine = cluster.engine
    result = CompileResult()

    def measure(name: str, ops: int, t0: float, net0: int, disk0: float) -> None:
        t1 = engine.now
        n_disks = len(cluster.objstore.osds)
        window = max(t1 - t0, 1e-9)
        result.phases.append(
            CompilePhase(
                name=name,
                ops=ops,
                duration_s=t1 - t0,
                mds_cpu_util=cluster.mds.cpu_utilization(t0, t1),
                net_bytes=cluster.network.total_bytes - net0,
                disk_util=(_disk_busy(cluster) - disk0) / (window * n_disks),
            )
        )

    # -- untar: parallel flash crowd of creates --------------------------
    t0, net0, disk0 = engine.now, cluster.network.total_bytes, _disk_busy(cluster)
    per_stream = max(1, scale // UNTAR_STREAMS)

    def untar_stream(idx: int):
        client = cluster.new_client()
        start_dir = idx * (dirs // UNTAR_STREAMS)
        span = max(1, dirs // UNTAR_STREAMS)
        per_dir = max(1, per_stream // span)
        for d in range(span):
            resp = yield engine.process(
                client.create_many(
                    f"/src/dir{start_dir + d}", per_dir, batch=batch
                )
            )
            if not resp.ok:
                raise RuntimeError(resp.error)

    yield engine.all_of(
        [engine.process(untar_stream(i), name=f"untar{i}")
         for i in range(UNTAR_STREAMS)]
    )
    yield engine.process(cluster.mds.journal.flush())
    measure("untar", per_stream * UNTAR_STREAMS, t0, net0, disk0)

    # -- configure: paced existence probes --------------------------------
    t0, net0, disk0 = engine.now, cluster.network.total_bytes, _disk_busy(cluster)
    probe_client = cluster.new_client()
    probes = max(1, scale // 10 // batch)
    ops = 0
    for i in range(probes):
        yield Timeout(engine, CONFIGURE_THINK_S)
        yield engine.process(
            probe_client.lookup(f"/src/dir{i % dirs}")
        )
        ops += 1
    yield engine.process(probe_client.create_many("/src", 5, batch=5))
    ops += 5
    measure("configure", ops, t0, net0, disk0)

    # -- make: parallel compiles (stat header, create object, think) ------
    t0, net0, disk0 = engine.now, cluster.network.total_bytes, _disk_busy(cluster)
    objects = int(scale * 0.7)
    per_make = max(1, objects // MAKE_STREAMS)
    make_ops = [0]

    def make_stream(idx: int):
        client = cluster.new_client()
        done = 0
        while done < per_make:
            take = min(batch, per_make - done)
            yield Timeout(engine, MAKE_THINK_S)
            yield engine.process(
                client.lookup(f"/src/dir{(idx + done) % dirs}")
            )
            resp = yield engine.process(
                client.create_many(f"/obj/dir{idx}", take, batch=batch)
            )
            if not resp.ok:
                raise RuntimeError(resp.error)
            done += take
            make_ops[0] += take + 1

    yield engine.all_of(
        [engine.process(make_stream(i), name=f"make{i}")
         for i in range(MAKE_STREAMS)]
    )
    yield engine.process(cluster.mds.journal.flush())
    measure("make", make_ops[0], t0, net0, disk0)
    return result
