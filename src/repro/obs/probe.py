"""A small instrumented workload that exercises every mechanism leg.

The probe drives one cluster through the two poles of Table I:

* ``/strong`` — strong+global (``rpcs+stream``): synchronous RPC
  creates, journal appends/dispatches, a final journal flush;
* ``/weak`` — weak+global (``append_client_journal+global_persist+
  volatile_apply``): decoupled appends, a global persist, and a merge.

It is the workload behind ``python -m repro.obs probe`` and the bench
harness's ``--obs`` flag.  Deliberately separate from the bench
experiments themselves, which stay uninstrumented so their artifacts
remain byte-identical with obs off (the zero-overhead guarantee).
"""

from __future__ import annotations

from typing import Optional

from repro.cluster import Cluster
from repro.core.namespace_api import Cudele
from repro.core.policy import SubtreePolicy
from repro.mds.server import MDSConfig
from repro.obs.core import Observability, observe
from repro.obs.report import obs_report

__all__ = ["run_probe", "probe_report"]

#: Small segments so a few hundred creates exercise dispatch/flush.
PROBE_SEGMENT_EVENTS = 64


def run_probe(
    seed: int = 0, ops: int = 300, profile: bool = True
) -> Observability:
    """Run the probe; returns the (detached) observability handle."""
    cluster = Cluster(
        mds_config=MDSConfig(segment_events=PROBE_SEGMENT_EVENTS), seed=seed
    )
    obs = observe(cluster, profile=profile)
    cudele = Cudele(cluster)
    try:
        with obs.tracer.span("probe.strong"):
            ns = cluster.run(cudele.decouple(
                "/strong", SubtreePolicy.from_semantics("strong", "global")
            ))
            cluster.run(ns.create_many([f"f{i}" for i in range(ops)]))
            cluster.run(ns.finalize())
        with obs.tracer.span("probe.weak"):
            ns = cluster.run(cudele.decouple(
                "/weak",
                SubtreePolicy.from_semantics(
                    "weak", "global", allocated_inodes=ops
                ),
            ))
            cluster.run(ns.create_many([f"g{i}" for i in range(ops)]))
            cluster.run(ns.finalize())
    finally:
        obs.detach()
    return obs


def probe_report(
    seed: int = 0, ops: int = 300, profile: bool = True,
    meta: Optional[dict] = None,
) -> dict:
    """Run the probe and package it as a report dict."""
    obs = run_probe(seed=seed, ops=ops, profile=profile)
    base = {
        "source": "probe",
        "seed": seed,
        "ops": ops,
        "profile": profile,
        "sim_end_s": obs.engine.now,
    }
    base.update(meta or {})
    return obs_report(obs, meta=base)
