"""Deterministic Dapper-style span tracing over the DES engine.

A *span* is one timed leg of a distributed operation (the client's RPC,
the MDS handling it, the journal append, the object-store write...).
Spans carry **simulated** timestamps and form a tree via parent links,
so one ``create`` under strong+global renders as::

    create-op
      client.rpc (client1, rpc)
        mds.handle (mds0, rpc)
          mds.apply (mds0, volatile_apply)
          mds.journal.append (mds0, stream)
            journal.dispatch (mds0, stream)
              osd.write (osd.0, rados)
              ...

Determinism
-----------
Span ids are monotone integers assigned in creation order.  The
simulation is seeded and wall-clock-free, so two identical runs produce
byte-identical span trees — no random trace ids, ever.

Context propagation
-------------------
The current span rides the engine's process graph: every ``Process``
carries an ``obs_span`` slot inherited from the context that spawned it
(``Engine.host_span`` for host-driver context), and the tracer reads and
writes the slot of the *active* process.  Fan-out therefore follows
automatically — a journal-flush process spawned inside the append span
starts life inside that span.  The one hop a spawned process cannot
model — the client's request crossing the MDS queue to a loop that has
been running since boot — carries the parent explicitly on the request
(``Request.span``), exactly like trace context in an RPC header.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.sim.engine import Engine

__all__ = ["Span", "Tracer"]

_INHERIT = object()


class Span:
    """One timed leg of an operation, in simulated seconds."""

    __slots__ = ("span_id", "parent_id", "name", "daemon", "mechanism",
                 "tags", "t_start", "t_end", "busy_s", "_prev")

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        name: str,
        daemon: str,
        mechanism: str,
        t_start: float,
        tags: tuple,
    ):
        self.span_id = span_id
        self.parent_id = parent_id  # 0 = root
        self.name = name
        self.daemon = daemon
        self.mechanism = mechanism
        self.tags = tags
        self.t_start = t_start
        self.t_end: Optional[float] = None
        #: Simulated busy time attributed by the profiling hook
        #: (``Observability.attach(..., profile=True)``).
        self.busy_s = 0.0
        self._prev: Optional["Span"] = None  # context to restore on end

    @property
    def duration_s(self) -> float:
        return (self.t_end if self.t_end is not None else self.t_start) - self.t_start

    @property
    def finished(self) -> bool:
        return self.t_end is not None

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "daemon": self.daemon,
            "mechanism": self.mechanism,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "busy_s": self.busy_s,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        return (
            f"Span(#{self.span_id}<-{self.parent_id} {self.name} "
            f"[{self.t_start:.6f}..{self.t_end if self.t_end is not None else '...'}])"
        )


class Tracer:
    """Allocates spans and maintains the per-process span context."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.spans: List[Span] = []
        self._next_id = 1

    # -- context ---------------------------------------------------------
    def current(self) -> Optional[Span]:
        """The span in force for the active process (or host driver)."""
        active = self.engine.active_process
        if active is not None:
            return active.obs_span
        return self.engine.host_span

    def _set_current(self, span: Optional[Span]) -> None:
        active = self.engine.active_process
        if active is not None:
            active.obs_span = span
        else:
            self.engine.host_span = span

    # -- lifecycle -------------------------------------------------------
    def start(
        self,
        name: str,
        daemon: str = "",
        mechanism: str = "",
        parent=_INHERIT,
        **tags,
    ) -> Span:
        """Open a span and make it the current context.

        ``parent`` defaults to the current span of the active context;
        pass an explicit span for cross-queue hops (or ``None`` to root
        a new trace).
        """
        if parent is _INHERIT:
            parent = self.current()
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else 0,
            name,
            daemon,
            mechanism,
            self.engine.now,
            tuple(sorted((k, str(v)) for k, v in tags.items())),
        )
        self._next_id += 1
        self.spans.append(span)
        span._prev = self.current()
        self._set_current(span)
        return span

    def end(self, span: Span) -> None:
        """Close ``span`` and restore the context it displaced."""
        if span.t_end is None:
            span.t_end = self.engine.now
        self._set_current(span._prev)

    @contextmanager
    def span(self, name: str, **kw):
        """``with tracer.span("mds.handle", daemon="mds0"):`` — safe in
        generators too: the finally runs even if the body raises."""
        sp = self.start(name, **kw)
        try:
            yield sp
        finally:
            self.end(sp)

    # -- inspection ------------------------------------------------------
    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def ancestors(self, span: Span) -> List[Span]:
        """Path from ``span``'s parent up to its root, in that order."""
        by_id: Dict[int, Span] = {s.span_id: s for s in self.spans}
        out: List[Span] = []
        cur = span
        while cur.parent_id:
            cur = by_id[cur.parent_id]
            out.append(cur)
        return out

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id == 0]

    def to_dicts(self) -> List[dict]:
        return [s.to_dict() for s in self.spans]

    def render(self) -> str:
        """ASCII span forest with simulated timestamps and durations."""
        from repro.obs.report import render_spans  # local: avoid cycle

        return render_spans(self.to_dicts())
