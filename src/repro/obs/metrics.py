"""Counters, gauges and fixed-bucket histograms (Ceph perf-counter style).

Naming scheme
-------------
A metric is identified by ``(name, daemon, tags)``:

* ``name`` — dotted, unit-suffixed (``op_latency_s``, ``bytes_written``);
* ``daemon`` — the simulated endpoint that recorded it (``mds0``,
  ``client1``, ``osd.2``, ``cudele`` for mechanism-level records);
* ``tags`` — sorted key/value pairs; by convention ``mechanism=<paper
  mechanism>`` (``rpc``, ``stream``, ``volatile_apply``,
  ``global_persist``, …) and, where a subtree policy is in scope,
  ``policy=<consistency>/<durability>`` (``posix`` for plain subtrees).

Histograms use fixed log-spaced buckets so p50/p95/p99 are available
without storing samples; percentiles interpolate linearly inside the
bucket and clamp to the observed min/max.  Everything here is pure
host-side bookkeeping — no engine events, no RNG — and every container
renders in sorted order, so snapshots are deterministic.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_LATENCY_BOUNDS", "Counter", "Gauge", "Histogram", "MetricsHub",
]

#: Log-spaced bucket upper bounds: 5 per decade, 1 µs .. 1000 s.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (i / 5.0 - 6.0) for i in range(46)
)

TagItems = Tuple[Tuple[str, str], ...]


def _tag_items(tags: Dict[str, object]) -> TagItems:
    return tuple(sorted((k, str(v)) for k, v in tags.items()))


class _Metric:
    """Shared identity plumbing for the three metric kinds."""

    kind = "metric"
    __slots__ = ("name", "daemon", "tags")

    def __init__(self, name: str, daemon: str, tags: TagItems):
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.daemon = daemon
        self.tags = tags

    @property
    def key(self) -> tuple:
        return (self.name, self.daemon, self.tags)

    def _base_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "daemon": self.daemon,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        tags = ",".join(f"{k}={v}" for k, v in self.tags)
        return f"{type(self).__name__}({self.daemon}.{self.name}[{tags}])"


class Counter(_Metric):
    """A monotonically increasing count (ops, bytes, retries...)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, daemon: str = "", tags: TagItems = ()):
        super().__init__(name, daemon, tags)
        self.value = 0

    def incr(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n

    def to_dict(self) -> dict:
        out = self._base_dict()
        out["value"] = self.value
        return out


class Gauge(_Metric):
    """A point-in-time level (queue depth, window occupancy...)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, daemon: str = "", tags: TagItems = ()):
        super().__init__(name, daemon, tags)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def to_dict(self) -> dict:
        out = self._base_dict()
        out["value"] = self.value
        return out


class Histogram(_Metric):
    """Fixed-bucket histogram: percentiles without sample storage.

    ``bounds`` are inclusive bucket upper bounds; one overflow bucket
    catches anything beyond the last bound.  ``percentile`` finds the
    bucket holding the requested rank and interpolates linearly within
    it, clamping to the exact observed ``min``/``max``.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        daemon: str = "",
        tags: TagItems = (),
        bounds: Tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
    ):
        super().__init__(name, daemon, tags)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative observation: {value!r}")
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s buckets into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0..100) from the buckets."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p!r}")
        if self.count == 0:
            return 0.0
        # Boundary percentiles are exact observations, not estimates: the
        # scan below resolves rank 0 *inside* the first non-empty bucket
        # (``cum + c >= 0`` matches immediately), which answers with a
        # bucket interpolation where the observed extreme is known.
        if p == 0:
            return self.min
        if p == 100:
            return self.max
        rank = (p / 100.0) * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                frac = min(max((rank - cum) / c, 0.0), 1.0)
                value = lo + (hi - lo) * frac
                return min(max(value, self.min), self.max)
            cum += c
        return self.max

    def to_dict(self) -> dict:
        out = self._base_dict()
        out.update(
            count=self.count,
            sum=self.sum,
            min=self.min if self.count else 0.0,
            max=self.max if self.count else 0.0,
            p50=self.percentile(50),
            p95=self.percentile(95),
            p99=self.percentile(99),
            # Sparse rendering: only occupied buckets, by upper bound
            # ("+Inf" is the overflow bucket), in bound order.
            buckets={
                ("+Inf" if i == len(self.bounds) else repr(self.bounds[i])): c
                for i, c in enumerate(self.counts)
                if c
            },
        )
        return out


class MetricsHub:
    """Registry of every metric recorded by an instrumented cluster.

    ``counter``/``gauge``/``histogram`` get-or-create: the first call
    for a ``(name, daemon, tags)`` identity creates the metric, later
    calls return the same object (asking for a different kind under the
    same identity is an error).
    """

    def __init__(self):
        self._metrics: Dict[tuple, _Metric] = {}

    def _get(self, cls, name: str, daemon: str, tags: dict, **kw) -> _Metric:
        items = _tag_items(tags)
        key = (name, daemon, items)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, daemon=daemon, tags=items, **kw)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {key} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, daemon: str = "", **tags) -> Counter:
        return self._get(Counter, name, daemon, tags)

    def gauge(self, name: str, daemon: str = "", **tags) -> Gauge:
        return self._get(Gauge, name, daemon, tags)

    def histogram(
        self,
        name: str,
        daemon: str = "",
        bounds: Tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
        **tags,
    ) -> Histogram:
        return self._get(Histogram, name, daemon, tags, bounds=bounds)

    def get(self, name: str, daemon: str = "", **tags) -> Optional[_Metric]:
        return self._metrics.get((name, daemon, _tag_items(tags)))

    def __len__(self) -> int:
        return len(self._metrics)

    def metrics(self) -> List[_Metric]:
        """Every metric, sorted by (name, daemon, tags) — deterministic."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    def histograms(self) -> Iterable[Histogram]:
        for m in self.metrics():
            if isinstance(m, Histogram):
                yield m

    def snapshot(self) -> List[dict]:
        """Deterministic, JSON-ready dump of every metric."""
        return [m.to_dict() for m in self.metrics()]
