"""CLI: render obs reports, or generate one with the probe workload.

    python -m repro.obs report bench-artifacts/           # table from OBS_report.json
    python -m repro.obs report OBS_report.json --csv out.csv --spans
    python -m repro.obs probe --out obs-artifacts/ --seed 3
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.obs.report import (
    format_breakdown, load_report, render_spans, rows_to_csv,
)

REPORT_JSON = "OBS_report.json"
BREAKDOWN_CSV = "OBS_breakdown.csv"


def _resolve_report_path(path: str) -> str:
    if os.path.isdir(path):
        return os.path.join(path, REPORT_JSON)
    return path


def _print_report(report: dict, show_spans: bool) -> None:
    meta = report.get("meta", {})
    if meta:
        pairs = ", ".join(f"{k}={meta[k]}" for k in sorted(meta))
        print(f"# {pairs}")
    print(format_breakdown(report.get("breakdown", [])))
    if show_spans:
        spans = report.get("spans")
        print()
        if spans:
            print(render_spans(spans))
        else:
            print("(report carries no spans)")


def write_report_artifacts(report: dict, out_dir: str) -> list:
    """Write OBS_report.json + OBS_breakdown.csv; returns the paths."""
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, REPORT_JSON)
    csv_path = os.path.join(out_dir, BREAKDOWN_CSV)
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(csv_path, "w", encoding="utf-8") as fh:
        fh.write(rows_to_csv(report.get("breakdown", [])))
    return [json_path, csv_path]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability reports for the Cudele simulator.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    rep = sub.add_parser("report", help="render a saved obs report")
    rep.add_argument(
        "path",
        help=f"report JSON, or a directory holding {REPORT_JSON}",
    )
    rep.add_argument("--csv", help="also write the breakdown as CSV here")
    rep.add_argument(
        "--spans", action="store_true", help="print the span forest"
    )

    probe = sub.add_parser(
        "probe", help="run the instrumented probe workload"
    )
    probe.add_argument("--seed", type=int, default=0)
    probe.add_argument("--ops", type=int, default=300)
    probe.add_argument(
        "--no-profile", action="store_true",
        help="skip busy-time attribution",
    )
    probe.add_argument("--out", help="directory for the report artifacts")
    probe.add_argument(
        "--spans", action="store_true", help="print the span forest"
    )

    args = parser.parse_args(argv)

    if args.cmd == "report":
        path = _resolve_report_path(args.path)
        try:
            report = load_report(path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _print_report(report, args.spans)
        if args.csv:
            with open(args.csv, "w", encoding="utf-8") as fh:
                fh.write(rows_to_csv(report.get("breakdown", [])))
            print(f"\nwrote {args.csv}")
        return 0

    # probe — import lazily so `report` stays light.
    from repro.obs.probe import probe_report

    report = probe_report(
        seed=args.seed, ops=args.ops, profile=not args.no_profile
    )
    _print_report(report, args.spans)
    if args.out:
        for path in write_report_artifacts(report, args.out):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
