"""repro.obs — span tracing and metrics for the simulated cluster.

``observe(cluster)`` attaches a :class:`MetricsHub` and a
:class:`Tracer` to every daemon; ``python -m repro.obs report`` renders
the per-mechanism latency breakdown from a saved report.  See
``docs/OBSERVABILITY.md``.
"""

from repro.obs.core import Observability, observe, policy_tag
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsHub,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    breakdown_rows,
    format_breakdown,
    load_report,
    mechanism_breakdown,
    obs_report,
    render_spans,
    rows_to_csv,
)
from repro.obs.spans import Span, Tracer

__all__ = [
    "Observability", "observe", "policy_tag",
    "MetricsHub", "Counter", "Gauge", "Histogram", "DEFAULT_LATENCY_BOUNDS",
    "Span", "Tracer",
    "REPORT_SCHEMA", "obs_report", "breakdown_rows", "format_breakdown",
    "mechanism_breakdown", "rows_to_csv", "render_spans", "load_report",
]
