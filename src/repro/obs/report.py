"""Rendering: per-mechanism latency breakdown, JSON/CSV artifacts.

The breakdown answers the paper's central "where does the time go"
question per mechanism: every ``*latency_s`` histogram is merged by its
``mechanism`` tag, so the table shows — for one run — how RPC round
trips compare to journal appends, applies, and persists.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional

from repro.obs.metrics import Histogram, MetricsHub

__all__ = [
    "REPORT_SCHEMA",
    "mechanism_breakdown",
    "breakdown_rows",
    "format_breakdown",
    "rows_to_csv",
    "obs_report",
    "render_spans",
    "load_report",
]

REPORT_SCHEMA = "repro-obs-report/1"

#: Columns of the breakdown table/CSV, in order.
BREAKDOWN_FIELDS = (
    "mechanism", "count", "total_s", "mean_s",
    "p50_s", "p95_s", "p99_s", "max_s",
)


def mechanism_breakdown(hub: MetricsHub) -> Dict[str, Histogram]:
    """Merge every ``*latency_s`` histogram by its ``mechanism`` tag.

    Returns ``{mechanism: merged histogram}`` sorted by mechanism name;
    histograms without a mechanism tag land under ``"untagged"``.
    """
    merged: Dict[str, Histogram] = {}
    for hist in hub.histograms():
        if not hist.name.endswith("latency_s"):
            continue
        mech = dict(hist.tags).get("mechanism", "untagged")
        agg = merged.get(mech)
        if agg is None:
            agg = Histogram(
                "latency_s", tags=(("mechanism", mech),), bounds=hist.bounds
            )
            merged[mech] = agg
        agg.merge(hist)
    return {mech: merged[mech] for mech in sorted(merged)}


def breakdown_rows(hub: MetricsHub) -> List[dict]:
    """The breakdown as JSON/CSV-ready rows (see BREAKDOWN_FIELDS)."""
    rows = []
    for mech, hist in mechanism_breakdown(hub).items():
        rows.append({
            "mechanism": mech,
            "count": hist.count,
            "total_s": hist.sum,
            "mean_s": hist.mean,
            "p50_s": hist.percentile(50),
            "p95_s": hist.percentile(95),
            "p99_s": hist.percentile(99),
            "max_s": hist.max if hist.count else 0.0,
        })
    return rows


def format_breakdown(rows: List[dict]) -> str:
    """Fixed-width table of the per-mechanism latency breakdown."""
    if not rows:
        return "(no latency histograms recorded)"
    name_w = max(len("mechanism"), *(len(r["mechanism"]) for r in rows))
    header = (
        f"{'mechanism':<{name_w}}  {'count':>8}  {'total_s':>10}  "
        f"{'mean_s':>10}  {'p50_s':>10}  {'p95_s':>10}  {'p99_s':>10}  "
        f"{'max_s':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['mechanism']:<{name_w}}  {r['count']:>8}  "
            f"{r['total_s']:>10.6f}  {r['mean_s']:>10.6f}  "
            f"{r['p50_s']:>10.6f}  {r['p95_s']:>10.6f}  "
            f"{r['p99_s']:>10.6f}  {r['max_s']:>10.6f}"
        )
    return "\n".join(lines)


def rows_to_csv(rows: List[dict]) -> str:
    """The breakdown rows as CSV text (deterministic column order)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=BREAKDOWN_FIELDS)
    writer.writeheader()
    for r in rows:
        writer.writerow({k: r[k] for k in BREAKDOWN_FIELDS})
    return buf.getvalue()


def obs_report(obs, meta: Optional[dict] = None,
               include_spans: bool = True) -> dict:
    """One JSON-ready report: metrics, breakdown, and (optionally) spans.

    ``obs`` is an attached-or-detached
    :class:`~repro.obs.core.Observability`.  Deterministic: metric and
    span order is fixed, timestamps are simulated.
    """
    report = {
        "schema": REPORT_SCHEMA,
        "meta": dict(meta or {}),
        "breakdown": breakdown_rows(obs.hub),
        "metrics": obs.hub.snapshot(),
    }
    if include_spans:
        report["spans"] = obs.tracer.to_dicts()
    return report


def render_spans(spans: List[dict]) -> str:
    """ASCII forest for a list of span dicts (see ``Span.to_dict``)."""
    children: Dict[int, List[dict]] = {}
    for s in spans:
        children.setdefault(s["parent"], []).append(s)
    lines: List[str] = []

    def walk(span: dict, depth: int) -> None:
        end = "..." if span["t_end"] is None else f"{span['t_end']:.6f}"
        extra = f" busy={span['busy_s']:.6f}s" if span.get("busy_s") else ""
        meta = ", ".join(
            x for x in (span.get("daemon"), span.get("mechanism")) if x
        )
        lines.append(
            f"{'  ' * depth}{span['name']}"
            + (f" ({meta})" if meta else "")
            + f" [{span['t_start']:.6f}..{end}]{extra}"
        )
        for child in children.get(span["id"], ()):
            walk(child, depth + 1)

    for root in children.get(0, ()):
        walk(root, 0)
    return "\n".join(lines)


def load_report(path) -> dict:
    """Read a report JSON written by ``obs_report``/the bench ``--obs``
    run, validating the schema marker."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    schema = report.get("schema")
    if schema != REPORT_SCHEMA:
        raise ValueError(
            f"{path}: not an obs report (schema={schema!r}, "
            f"expected {REPORT_SCHEMA!r})"
        )
    return report
