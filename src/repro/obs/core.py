"""Attach/detach observability to a simulated cluster.

:class:`Observability` bundles a :class:`~repro.obs.metrics.MetricsHub`
and a :class:`~repro.obs.spans.Tracer` and wires them into every daemon
of one :class:`~repro.cluster.Cluster` (clients created later inherit
via the cluster's factories, mirroring the conformance recorder).

Zero-cost when detached
-----------------------
Every instrumented hot path guards on ``self.obs is not None`` — the
same single-branch pattern as the conformance recorder and the engine
trace hook.  Observation is pure host-side bookkeeping: it schedules no
engine events, draws no randomness, and never touches simulated state,
so an instrumented run is *simulation-identical* to a bare one (the
bench suite enforces byte-identical artifacts with obs off).

The object-store hook chains: if a conformance recorder already owns
``RadosObject.on_mutate``, obs calls it first and restores it on
detach — attach the recorder before obs, detach obs before the
recorder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import MetricsHub
from repro.obs.spans import Tracer
from repro.rados.objects import RadosObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster import Cluster

__all__ = ["Observability", "observe", "policy_tag"]


def policy_tag(policy) -> str:
    """Deterministic tag for the subtree policy in force.

    ``"<consistency>/<durability>"`` for a
    :class:`~repro.core.policy.SubtreePolicy`, ``"posix"`` for plain
    (un-decoupled) subtrees, ``"custom"`` for policy-like objects
    without the two composition fields.  Never ``str(policy)`` — a
    default repr would leak memory addresses into artifacts.
    """
    if policy is None:
        return "posix"
    consistency = getattr(policy, "consistency", None)
    durability = getattr(policy, "durability", None)
    if isinstance(consistency, str) and isinstance(durability, str):
        return f"{consistency}/{durability}"
    return "custom"


class Observability:
    """Metrics + tracing for one cluster; attach to start observing."""

    def __init__(self, cluster: "Cluster", profile: bool = False):
        self.cluster = cluster
        self.engine = cluster.engine
        self.hub = MetricsHub()
        self.tracer = Tracer(cluster.engine)
        #: When set, the engine's sleep hook attributes simulated busy
        #: time (every ``Engine.sleep`` — the CPU/cost-model delays) to
        #: the span in force when the sleep was issued.
        self.profile = profile
        self.attached = False
        self._prev_mutate = None
        self._prev_sleep_hook = None

    # -- wiring ----------------------------------------------------------
    def _daemons(self):
        cluster = self.cluster
        yield cluster
        # A sharded engine reports per-shard dispatch counters and sync
        # stalls at run end (repro.sim.shard); a serial Engine has no
        # ``obs`` slot, so only the facade is wired.
        if hasattr(cluster.engine, "_flush_obs_counters"):
            yield cluster.engine
        for mds in cluster.mds_list:
            yield mds
            yield mds.journal
        for osd in cluster.objstore.osds:
            yield osd
        for client in cluster._clients:
            yield client
        for dclient in cluster._dclients:
            yield dclient

    def attach(self) -> "Observability":
        if self.attached:
            raise RuntimeError("observability is already attached")
        for daemon in self._daemons():
            daemon.obs = self
        # Chain (don't clobber) the object-store mutation hook so the
        # conformance recorder keeps witnessing persistence.
        self._prev_mutate = RadosObject.on_mutate
        RadosObject.on_mutate = self._on_mutate
        if self.profile:
            self._prev_sleep_hook = self.engine.sleep_hook
            self.engine.sleep_hook = self._on_sleep
        self.attached = True
        return self

    def detach(self) -> None:
        if not self.attached:
            return
        for daemon in self._daemons():
            daemon.obs = None
        RadosObject.on_mutate = self._prev_mutate
        self._prev_mutate = None
        if self.profile:
            self.engine.sleep_hook = self._prev_sleep_hook
            self._prev_sleep_hook = None
        self.attached = False

    def __enter__(self) -> "Observability":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- hooks -----------------------------------------------------------
    def _on_mutate(self, obj, action: str, nbytes: int) -> None:
        prev = self._prev_mutate
        if prev is not None:
            prev(obj, action, nbytes)
        self.hub.counter(
            "object_mutations", daemon="objstore", mechanism="rados",
            action=action,
        ).incr()
        self.hub.counter(
            "object_bytes", daemon="objstore", mechanism="rados",
            action=action,
        ).incr(nbytes)

    def _on_sleep(self, delay: float) -> None:
        prev = self._prev_sleep_hook
        if prev is not None:
            prev(delay)
        span = self.tracer.current()
        if span is not None:
            span.busy_s += delay

    # -- convenience -----------------------------------------------------
    def mds_policy_tag(self, mds, path: str) -> str:
        """Tag for the policy governing ``path`` at ``mds`` (see
        :func:`policy_tag`)."""
        resolver = mds.policy_resolver
        return policy_tag(resolver(path) if resolver is not None else None)


def observe(cluster: "Cluster", profile: bool = False) -> Observability:
    """Build and attach an :class:`Observability` in one call."""
    return Observability(cluster, profile=profile).attach()
