"""The Cudele mechanisms (paper Figure 4 / Section III-A).

Each mechanism is a process body ``mech(ctx)`` operating on a
:class:`MechanismContext`.  Workload-phase mechanisms (RPCs, Append
Client Journal, Stream) shape how operations execute while the job runs
and are no-ops at completion time; the others move or merge the client's
journal when invoked.

===================  ======================================================
rpcs                 per-op client->MDS round trips (strong consistency)
append_client_journal  updates buffered in the client's in-memory journal
volatile_apply       replay the client journal onto the MDS's in-memory
                     metadata store
nonvolatile_apply    replay the client journal through the object store
                     (pull/update/push of affected dir objects), then
                     restart the MDS so it re-reads the journal
stream               MDS streams its metadata journal into the object
                     store (flushes any open segment here)
local_persist        write the serialized journal to the client's disk
global_persist       push the serialized journal into the object store
===================  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional

from repro import calibration as cal
from repro.core.merge import merge_journal
from repro.journal.events import JournalEvent, WIRE_EVENT_BYTES
from repro.rados.striper import Striper
from repro.sim.engine import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.client.decoupled import DecoupledClient
    from repro.cluster import Cluster

__all__ = ["MechanismContext", "MECHANISMS", "run_mechanism"]

#: Nonvolatile Apply does real per-event object round trips up to this
#: many events; longer journals extrapolate from a measured prefix (the
#: per-event cost is constant, so this only bounds simulator host work).
NVA_REAL_EVENT_LIMIT = 512


@dataclass
class MechanismContext:
    """Everything a mechanism needs to run."""

    cluster: "Cluster"
    subtree: str
    dclient: Optional["DecoupledClient"] = None
    merge_priority: str = "decoupled"

    @property
    def engine(self):
        return self.cluster.engine

    @property
    def mds(self):
        """The MDS authoritative for this subtree (rank 0 unless the
        cluster partitions subtrees across ranks)."""
        return self.cluster.mds_for(self.subtree)

    @property
    def objstore(self):
        return self.cluster.objstore

    @property
    def network(self):
        return self.cluster.network

    @property
    def client_id(self) -> int:
        return self.dclient.client_id if self.dclient else 0

    @property
    def events(self) -> Optional[List[JournalEvent]]:
        """Materialized journal events, if any."""
        if self.dclient is not None and len(self.dclient.journal):
            return list(self.dclient.journal.events)
        return None

    @property
    def counted(self) -> int:
        return self.dclient.counted_ops if self.dclient else 0

    @property
    def n_events(self) -> int:
        return (len(self.dclient.journal) if self.dclient else 0) + self.counted

    def persist_striper(self) -> Striper:
        name = self.dclient.name if self.dclient else "client"
        return Striper(self.objstore, "metadata", f"{name}.journal")


# --------------------------------------------------------------------------
# workload-phase markers
# --------------------------------------------------------------------------


def mech_rpcs(ctx: MechanismContext) -> Generator[Event, None, None]:
    """Strong consistency: operations already went through the MDS
    during the workload; nothing to do at completion."""
    return
    yield  # pragma: no cover - makes this a generator


def mech_append_client_journal(
    ctx: MechanismContext,
) -> Generator[Event, None, None]:
    """Updates were appended to the client journal during the workload."""
    return
    yield  # pragma: no cover


def mech_stream(ctx: MechanismContext) -> Generator[Event, None, None]:
    """Stream runs continuously on the MDS; flush the open segment so
    'global durability' holds at the completion point."""
    if not ctx.mds.journal.enabled:
        raise RuntimeError(
            "policy requires the Stream mechanism but the MDS journal is "
            "disabled (MDSConfig.journal_enabled=False)"
        )
    yield from ctx.mds.journal.flush()


# --------------------------------------------------------------------------
# apply mechanisms
# --------------------------------------------------------------------------


def mech_volatile_apply(ctx: MechanismContext) -> Generator[Event, None, None]:
    """Ship the client journal to the MDS and replay it onto the
    in-memory metadata store.  No durability until something persists."""
    n = ctx.n_events
    if n == 0:
        return
    src = ctx.dclient.name if ctx.dclient else "client"
    yield from ctx.network.send(src, ctx.mds.name, n * WIRE_EVENT_BYTES)
    events = ctx.events
    if events is not None:
        yield from merge_journal(
            ctx.mds, ctx.subtree, ctx.client_id, events=events,
            priority=ctx.merge_priority,
        )
    if ctx.counted:
        yield from merge_journal(
            ctx.mds, ctx.subtree, ctx.client_id, count=ctx.counted,
        )


def mech_nonvolatile_apply(ctx: MechanismContext) -> Generator[Event, None, None]:
    """Replay the journal through the object store, then restart the MDS.

    "It works by iterating over the updates in the journal and pulling
    all objects that may be affected ... two objects are repeatedly
    pulled, updated, and pushed: the object that houses the experiment
    directory and the object that contains the root directory." (§V-A)
    """
    n = ctx.n_events
    if n == 0:
        return
    src = ctx.dclient.name if ctx.dclient else "client"
    store = ctx.objstore
    dir_obj = f"nva:{ctx.subtree}"
    root_obj = "nva:/"
    payload = b"\x00"

    real = min(n, NVA_REAL_EVENT_LIMIT)
    sample_start = ctx.engine.now
    for _ in range(real):
        for obj in (dir_obj, root_obj):
            yield from store.read_modify_write(
                "metadata", obj, payload, src=src,
                charge_bytes=cal.NVA_RMW_BYTES,
            )
    if n > real:
        # The per-event cost is constant (same two objects each cycle),
        # so extrapolate the measured prefix instead of looping 100K
        # times in the host simulator.
        per_event = (ctx.engine.now - sample_start) / max(1, real)
        yield Timeout(ctx.engine, per_event * (n - real))

    # The metadata-store objects now reflect the journal; the MDS must
    # restart to notice them.  Persist the journal where the recovering
    # MDS will read it, then restart.
    events = ctx.events
    if events is not None:
        yield from ctx.mds.journal.log_events(events=events)
    if ctx.counted:
        yield from ctx.mds.journal.log_events(count=ctx.counted)
    yield from ctx.mds.journal.flush()
    done = ctx.mds.shutdown()
    yield done
    yield ctx.engine.process(ctx.mds.restart())


# --------------------------------------------------------------------------
# persist mechanisms
# --------------------------------------------------------------------------


def mech_local_persist(ctx: MechanismContext) -> Generator[Event, None, None]:
    """Write serialized log events to a file on local disk (§III-A)."""
    n = ctx.n_events
    if n == 0 or ctx.dclient is None:
        return
    yield Timeout(ctx.engine, n * cal.PERSIST_FORMAT_S)
    if len(ctx.dclient.journal):
        yield from ctx.dclient.journal.persist_local(ctx.dclient.persist_device)
    if ctx.counted:
        yield from ctx.dclient.persist_device.write(ctx.counted * WIRE_EVENT_BYTES)
    # The image is on disk now: a plain client crash can no longer lose
    # these updates (crash recovery reads them back via recover_local).
    ctx.dclient.note_local_persist()


def mech_global_persist(ctx: MechanismContext) -> Generator[Event, None, None]:
    """Push the journal into the object store (§III-A).

    The striper spreads the write over the OSDs, so the cost rides the
    aggregate bandwidth of the cluster rather than one disk.
    """
    n = ctx.n_events
    if n == 0 or ctx.dclient is None:
        return
    yield Timeout(
        ctx.engine, n * (cal.PERSIST_FORMAT_S + cal.GLOBAL_PERSIST_EVENT_S)
    )
    striper = ctx.persist_striper()
    src = ctx.dclient.name
    if len(ctx.dclient.journal):
        yield from ctx.dclient.journal.persist_global(striper, src=src)
    if ctx.counted:
        yield from striper.append(
            b"\x00", src=src,
            charge_factor=float(ctx.counted * WIRE_EVENT_BYTES),
        )


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

MECHANISMS: Dict[str, Callable[[MechanismContext], Generator]] = {
    "rpcs": mech_rpcs,
    "append_client_journal": mech_append_client_journal,
    "stream": mech_stream,
    "volatile_apply": mech_volatile_apply,
    "nonvolatile_apply": mech_nonvolatile_apply,
    "local_persist": mech_local_persist,
    "global_persist": mech_global_persist,
}


def run_mechanism(
    name: str, ctx: MechanismContext
) -> Generator[Event, None, None]:
    """Dispatch one mechanism by name (process body).

    When observability is attached to the cluster, every mechanism run
    gets a ``mech.<name>`` span and a ``mechanism_latency_s`` sample —
    all completion paths (``CompositionPlan.execute``, retarget,
    recouple) flow through here, so this one hook covers them all.
    """
    try:
        impl = MECHANISMS[name]
    except KeyError:
        raise KeyError(
            f"unknown mechanism {name!r}; known: {sorted(MECHANISMS)}"
        ) from None
    obs = getattr(ctx.cluster, "obs", None)
    if obs is None:
        yield from impl(ctx)
        return
    span = obs.tracer.start(
        f"mech.{name}", daemon="cudele", mechanism=name,
        subtree=ctx.subtree,
    )
    try:
        yield from impl(ctx)
    finally:
        obs.tracer.end(span)
        obs.hub.histogram(
            "mechanism_latency_s", daemon="cudele", mechanism=name
        ).observe(span.duration_s)
        obs.hub.counter(
            "mechanism_runs", daemon="cudele", mechanism=name
        ).incr()
