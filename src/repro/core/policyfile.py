"""The ``policies.yml`` format.

"Users present a directory path and a policies configuration ... The
policies file supports the following parameters (default values are in
parenthesis): which consistency model to use (RPCs), which durability
model to use (stream), number of inodes to provision to the decoupled
namespace (100), and which interfere policy to use (allow)."  (§III-C)

The parser handles the flat YAML subset those files need — ``key: value``
lines, comments, quoted strings, integers — with no external dependency.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.core.policy import SubtreePolicy

__all__ = ["PolicyFileError", "parse_policies", "dumps_policies"]

_KEYS = {
    "consistency": str,
    "durability": str,
    "allocated_inodes": int,
    "interfere": str,
    "read_lazy": bool,
}

#: Accepted aliases (the paper capitalizes mechanism names in prose).
_ALIASES = {
    "rpcs": "rpcs",
    "stream": "stream",
    "append client journal": "append_client_journal",
    "volatile apply": "volatile_apply",
    "nonvolatile apply": "nonvolatile_apply",
    "local persist": "local_persist",
    "global persist": "global_persist",
}


class PolicyFileError(ValueError):
    """Malformed policies file."""


def _unquote(value: str) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == value[-1] and value[0] in "\"'":
        return value[1:-1]
    return value


def _normalize_composition(value: str) -> str:
    """Lowercase, map prose aliases, tighten separators."""
    out_stages = []
    for stage in value.split("+"):
        groups = []
        for mech in stage.split("||"):
            name = mech.strip().lower()
            name = _ALIASES.get(name, name.replace(" ", "_"))
            groups.append(name)
        out_stages.append("||".join(groups))
    return "+".join(out_stages)


def parse_policies(text: str) -> SubtreePolicy:
    """Parse a policies file into a :class:`SubtreePolicy`.

    An empty file yields the defaults — "the subtree would behave like
    the existing CephFS implementation" with 100 provisioned inodes.
    """
    values: Dict[str, Union[str, int]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.startswith((" ", "\t")):
            raise PolicyFileError(
                f"line {lineno}: nested structure not supported: {raw!r}"
            )
        if ":" not in line:
            raise PolicyFileError(f"line {lineno}: expected 'key: value': {raw!r}")
        key, _, value = line.partition(":")
        key = key.strip().lower()
        if key not in _KEYS:
            raise PolicyFileError(
                f"line {lineno}: unknown key {key!r}; "
                f"expected one of {sorted(_KEYS)}"
            )
        if key in values:
            raise PolicyFileError(f"line {lineno}: duplicate key {key!r}")
        value = _unquote(value)
        if not value:
            raise PolicyFileError(f"line {lineno}: missing value for {key!r}")
        if _KEYS[key] is int:
            try:
                values[key] = int(value)
            except ValueError:
                raise PolicyFileError(
                    f"line {lineno}: {key} must be an integer, got {value!r}"
                ) from None
        elif _KEYS[key] is bool:
            lowered = value.strip().lower()
            if lowered not in ("true", "false", "yes", "no"):
                raise PolicyFileError(
                    f"line {lineno}: {key} must be true/false, got {value!r}"
                )
            values[key] = lowered in ("true", "yes")
        else:
            values[key] = value

    kwargs: Dict[str, Union[str, int]] = {}
    if "consistency" in values:
        kwargs["consistency"] = _normalize_composition(str(values["consistency"]))
    if "durability" in values:
        kwargs["durability"] = _normalize_composition(str(values["durability"]))
    if "allocated_inodes" in values:
        kwargs["allocated_inodes"] = values["allocated_inodes"]
    if "interfere" in values:
        kwargs["interfere"] = str(values["interfere"]).strip().lower()
    if "read_lazy" in values:
        kwargs["read_lazy"] = values["read_lazy"]
    try:
        return SubtreePolicy(**kwargs)  # type: ignore[arg-type]
    except ValueError as exc:
        raise PolicyFileError(str(exc)) from exc


def dumps_policies(policy: SubtreePolicy) -> str:
    """Serialize a policy back to the file format."""
    return (
        f"consistency: \"{policy.consistency}\"\n"
        f"durability: \"{policy.durability}\"\n"
        f"allocated_inodes: {policy.allocated_inodes}\n"
        f"interfere: {policy.interfere}\n"
        f"read_lazy: {'true' if policy.read_lazy else 'false'}\n"
    )
