"""Namespace sync: partial updates for read-while-writing (Figure 6c).

"Cudele clients have a 'namespace sync' that sends batches of updates
back to the global namespace at regular intervals ... The client only
pauses to fork off a background process, which is expensive as the
address space needs to be copied."  (paper §V-B3)

Cost model per sync (constants in :mod:`repro.calibration`):

* ``FORK_BASE_S`` — fork/COW setup of the client address space;
* ``batch_bytes / FORK_COPY_BPS`` — copying the dirty pages the batch
  touched since the previous sync;
* ``SYNC_CONTENTION_PER_S2 * interval^2`` — foreground slowdown while
  the background writer drains the batch to network/disk (the longer
  the interval, the larger the batch, and the longer the writer
  competes for memory bandwidth and page cache).

The batch itself ships to the MDS asynchronously (an idle core does
the logging and transfer), making partial results visible to ``ls``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro import calibration as cal
from repro.client.decoupled import DecoupledClient
from repro.cluster import Cluster
from repro.journal.events import WIRE_EVENT_BYTES
from repro.mds.server import Request
from repro.sim.engine import Event, Timeout

__all__ = ["NamespaceSyncStats", "synced_workload", "sync_pause_s"]


def sync_pause_s(batch_events: int, interval_s: float) -> float:
    """Foreground pause charged for one namespace sync."""
    batch_bytes = batch_events * WIRE_EVENT_BYTES
    return (
        cal.FORK_BASE_S
        + batch_bytes / cal.FORK_COPY_BPS
        + cal.SYNC_CONTENTION_PER_S2 * interval_s * interval_s
    )


@dataclass
class NamespaceSyncStats:
    """Outcome of one synced run."""

    total_updates: int
    interval_s: float
    syncs: int = 0
    run_time_s: float = 0.0
    baseline_time_s: float = 0.0
    largest_batch: int = 0
    synced_updates: int = 0

    @property
    def overhead(self) -> float:
        """Fractional slowdown vs. the never-syncing baseline."""
        if self.baseline_time_s == 0:
            return 0.0
        return self.run_time_s / self.baseline_time_s - 1.0

    @property
    def largest_batch_bytes(self) -> int:
        return self.largest_batch * WIRE_EVENT_BYTES


def synced_workload(
    cluster: Cluster,
    dclient: DecoupledClient,
    subtree: str,
    total_updates: int,
    interval_s: Optional[float],
) -> Generator[Event, None, NamespaceSyncStats]:
    """Write ``total_updates`` to a decoupled subtree, syncing every
    ``interval_s`` seconds (``None`` disables syncing: the baseline).

    Process body; returns the run's :class:`NamespaceSyncStats`.
    """
    if total_updates < 1:
        raise ValueError("need at least one update")
    if interval_s is not None and interval_s <= 0:
        raise ValueError("sync interval must be positive")
    engine = cluster.engine
    rate = 1.0 / cal.CLIENT_APPEND_S
    baseline = total_updates * cal.CLIENT_APPEND_S
    stats = NamespaceSyncStats(
        total_updates=total_updates,
        interval_s=interval_s if interval_s is not None else 0.0,
        baseline_time_s=baseline,
    )
    start = engine.now
    per_batch = (
        total_updates
        if interval_s is None
        else max(1, int(interval_s * rate))
    )
    done = 0
    background: List[Event] = []
    while done < total_updates:
        batch = min(per_batch, total_updates - done)
        yield engine.process(dclient.create_many(subtree, batch))
        done += batch
        if interval_s is not None and done < total_updates:
            stats.syncs += 1
            stats.largest_batch = max(stats.largest_batch, batch)
            yield Timeout(engine, sync_pause_s(batch, interval_s))
            background.append(
                engine.process(
                    _ship_batch(cluster, dclient, subtree, batch),
                    name=f"namespace-sync:{stats.syncs}",
                )
            )
            stats.synced_updates += batch
    # The job completes when the client's appends finish; background
    # syncs keep draining on the idle core (the paper measures the
    # client's slowdown, not the merge tail).
    stats.run_time_s = engine.now - start
    return stats


def _ship_batch(
    cluster: Cluster,
    dclient: DecoupledClient,
    subtree: str,
    batch: int,
) -> Generator[Event, None, None]:
    """Background half of a sync: move the batch to the MDS."""
    yield from cluster.network.send(
        dclient.name, cluster.mds.name, batch * WIRE_EVENT_BYTES
    )
    events = dclient.journal.drain() or None
    payload = events if events else batch
    resp = yield cluster.mds.submit(
        Request("volatile_apply", subtree, dclient.client_id, payload=payload)
    )
    if not resp.ok:  # pragma: no cover - defensive
        raise RuntimeError(f"namespace sync failed: {resp.error}")
    if isinstance(payload, int):
        dclient.counted_ops = max(0, dclient.counted_ops - batch)
