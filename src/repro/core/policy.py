"""Subtree policies and the Table I semantics matrix.

A :class:`SubtreePolicy` is what the policies file (and the monitor's
policy map) carries for one subtree: a consistency composition, a
durability composition, the Allocated Inodes contract and the interfere
policy.  :data:`TABLE_I` reproduces the paper's Table I exactly: the
canonical mechanism composition for every (consistency, durability)
cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dsl import parse_composition
from repro.core.semantics import Consistency, Durability, PersistBackend

__all__ = [
    "SubtreePolicy",
    "TABLE_I",
    "SYSTEM_POLICIES",
    "composition_for",
    "composition_warnings",
    "DEFAULT_ALLOCATED_INODES",
]

#: Policies-file default (paper §III-C): 100 inodes.
DEFAULT_ALLOCATED_INODES = 100

#: Table I, verbatim: (consistency, durability) -> composition.
TABLE_I: Dict[Tuple[Consistency, Durability], str] = {
    (Consistency.INVISIBLE, Durability.NONE): "append_client_journal",
    (Consistency.WEAK, Durability.NONE): "append_client_journal+volatile_apply",
    (Consistency.STRONG, Durability.NONE): "rpcs",
    (Consistency.INVISIBLE, Durability.LOCAL): "append_client_journal+local_persist",
    (Consistency.WEAK, Durability.LOCAL): (
        "append_client_journal+local_persist+volatile_apply"
    ),
    (Consistency.STRONG, Durability.LOCAL): "rpcs+local_persist",
    (Consistency.INVISIBLE, Durability.GLOBAL): (
        "append_client_journal+global_persist"
    ),
    (Consistency.WEAK, Durability.GLOBAL): (
        "append_client_journal+global_persist+volatile_apply"
    ),
    (Consistency.STRONG, Durability.GLOBAL): "rpcs+stream",
}

#: The semantics of existing systems, as the paper labels them (§III-B,
#: Figure 5 right panel).
SYSTEM_POLICIES: Dict[str, Tuple[Consistency, Durability]] = {
    "POSIX": (Consistency.STRONG, Durability.GLOBAL),
    "CephFS": (Consistency.STRONG, Durability.GLOBAL),
    "IndexFS": (Consistency.STRONG, Durability.GLOBAL),
    "BatchFS": (Consistency.WEAK, Durability.LOCAL),
    "DeltaFS": (Consistency.INVISIBLE, Durability.LOCAL),
    "RAMDisk": (Consistency.WEAK, Durability.NONE),
}


def composition_for(
    consistency: Consistency | str, durability: Durability | str
) -> str:
    """Table I lookup (accepts enum members or their string names)."""
    if isinstance(consistency, str):
        consistency = Consistency.parse(consistency)
    if isinstance(durability, str):
        durability = Durability.parse(durability)
    return TABLE_I[(consistency, durability)]


def composition_warnings(text: str) -> List[str]:
    """Flag compositions the paper calls out as making 'little sense'.

    "it makes little sense to do append client journal+RPCs since both
    mechanisms do the same thing or stream+local persist since 'global'
    durability is stronger and has more overhead than 'local'" (§III-B).
    All permutations remain *legal* — these are advisory.
    """
    plan = parse_composition(text)
    mechs = set(plan.mechanisms)
    warnings = []
    if {"append_client_journal", "rpcs"} <= mechs:
        warnings.append(
            "append_client_journal+rpcs: both mechanisms record the same "
            "updates; pick one"
        )
    if "stream" in mechs and "local_persist" in mechs:
        warnings.append(
            "stream+local_persist: stream already provides global "
            "durability, which is stronger than local"
        )
    if "stream" in mechs and "global_persist" in mechs:
        warnings.append(
            "stream+global_persist: both persist the journal globally"
        )
    if "volatile_apply" in mechs and "nonvolatile_apply" in mechs:
        warnings.append(
            "volatile_apply+nonvolatile_apply: both merge the same journal"
        )
    return warnings


@dataclass
class SubtreePolicy:
    """The policies-file contents for one subtree (paper §III-C).

    Defaults match the paper: "decoupling the namespace with an empty
    policies file would give the application 100 inodes but the subtree
    would behave like the existing CephFS implementation."
    """

    consistency: str = "rpcs"
    durability: str = "stream"
    allocated_inodes: int = DEFAULT_ALLOCATED_INODES
    interfere: str = "allow"
    #: Figure 1's HDFS subtree semantics: "weaker than strong consistency
    #: because it lets clients read files opened for writing".  When set,
    #: readers see the last committed file size without recalling the
    #: writer's buffering capability (fast but possibly stale).
    read_lazy: bool = False
    #: Device Local Persist writes through: "disk" (the node's SSD, the
    #: default) or "nvram" (DurableFS-style persistent memory — see
    #: :class:`~repro.core.semantics.PersistBackend`).  Global Persist
    #: always targets the object store regardless of this field.
    persist_backend: str = "disk"
    #: The client that decoupled this subtree (set by the namespace API).
    owner_client: Optional[int] = None
    #: Preferred MDS rank for this subtree (a Mantle-style placement
    #: hint).  When a policy installation names a rank other than the
    #: current authority, the namespace API triggers a live subtree
    #: migration (:func:`repro.mds.migrate.migrate_subtree`) instead of
    #: stopping traffic.  ``None`` leaves placement alone.
    mds_rank: Optional[int] = None

    def __post_init__(self) -> None:
        # Validate compositions and the interfere policy eagerly.
        parse_composition(self.consistency)
        if self.durability != "none":
            parse_composition(self.durability)
        if self.interfere not in ("allow", "block"):
            raise ValueError(
                f"interfere policy must be 'allow' or 'block', "
                f"got {self.interfere!r}"
            )
        if self.allocated_inodes < 0:
            raise ValueError("allocated_inodes must be >= 0")
        if self.mds_rank is not None and self.mds_rank < 0:
            raise ValueError("mds_rank must be >= 0")
        PersistBackend.parse(self.persist_backend)

    # -- derived views -----------------------------------------------------
    @property
    def combined_composition(self) -> str:
        """Consistency and durability compositions merged, duplicates
        dropped (e.g. both sides naming append_client_journal)."""
        parts: List[str] = []
        seen = set()
        for comp in (self.consistency, self.durability):
            if comp == "none":
                continue
            for stage in comp.split("+"):
                key = stage.strip()
                if key not in seen:
                    seen.add(key)
                    parts.append(key)
        return "+".join(parts)

    @property
    def plan(self):
        return parse_composition(self.combined_composition)

    @property
    def workload_mode(self) -> str:
        return self.plan.workload_mode

    @property
    def is_decoupled(self) -> bool:
        return self.workload_mode == "decoupled"

    def warnings(self) -> List[str]:
        return composition_warnings(self.combined_composition)

    @classmethod
    def from_semantics(
        cls,
        consistency: Consistency | str,
        durability: Durability | str,
        **kw,
    ) -> "SubtreePolicy":
        """Build the Table I policy for a semantics cell."""
        comp = composition_for(consistency, durability)
        # Split the canonical composition into its consistency-ish and
        # durability-ish halves for the policy file's two fields.
        mechs = comp.split("+")
        dur = [m for m in mechs if m in ("local_persist", "global_persist", "stream")]
        con = [m for m in mechs if m not in dur]
        return cls(
            consistency="+".join(con) if con else "rpcs",
            durability="+".join(dur) if dur else "none",
            **kw,
        )

    @classmethod
    def for_system(cls, system: str, **kw) -> "SubtreePolicy":
        """Policy mirroring a named real-world system (Figure 1 / 5)."""
        try:
            consistency, durability = SYSTEM_POLICIES[system]
        except KeyError:
            raise KeyError(
                f"unknown system {system!r}; known: {sorted(SYSTEM_POLICIES)}"
            ) from None
        return cls.from_semantics(consistency, durability, **kw)
