"""The consistency and durability spectra (paper Section III-B).

Consistency
    * ``INVISIBLE`` — "the system does not handle merging updates into a
      global namespace and it is assumed that middleware or the
      application manages consistency lazily".
    * ``WEAK`` — "merges updates at some time in the future".
    * ``STRONG`` — "updates are seen immediately by all clients".

Durability
    * ``NONE`` — "updates are volatile and will be lost on a failure".
    * ``LOCAL`` — "updates will be retained if the client node recovers
      and reads the updates from local storage".
    * ``GLOBAL`` — "all updates are always recoverable".

Persist backend
    Local durability additionally names *where* the persisted journal
    image lands (``SubtreePolicy.persist_backend``):

    * ``DISK`` — the client node's SSD (the default; the paper's
      CloudLab configuration).
    * ``NVRAM`` — byte-addressable persistent memory in the client
      node, DurableFS-style: microsecond access, higher bandwidth, and
      an explicit flush barrier per persist instead of a seek.

    Global durability always targets the object store; the backend only
    chooses the device Local Persist (and per-record ``persist_each``)
    writes through.
"""

from __future__ import annotations

import enum

__all__ = ["Consistency", "Durability", "PersistBackend"]


class Consistency(enum.Enum):
    """The consistency spectrum (weakest to strongest)."""

    INVISIBLE = "invisible"
    WEAK = "weak"
    STRONG = "strong"

    @classmethod
    def parse(cls, text: str) -> "Consistency":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown consistency {text!r}; "
                f"expected one of {[c.value for c in cls]}"
            ) from None

    def __lt__(self, other: "Consistency") -> bool:
        order = [Consistency.INVISIBLE, Consistency.WEAK, Consistency.STRONG]
        return order.index(self) < order.index(other)


class Durability(enum.Enum):
    """The durability spectrum (weakest to strongest)."""

    NONE = "none"
    LOCAL = "local"
    GLOBAL = "global"

    @classmethod
    def parse(cls, text: str) -> "Durability":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown durability {text!r}; "
                f"expected one of {[d.value for d in cls]}"
            ) from None

    def __lt__(self, other: "Durability") -> bool:
        order = [Durability.NONE, Durability.LOCAL, Durability.GLOBAL]
        return order.index(self) < order.index(other)


class PersistBackend(enum.Enum):
    """Where the locally persisted journal image lands."""

    DISK = "disk"
    NVRAM = "nvram"

    @classmethod
    def parse(cls, text: str) -> "PersistBackend":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown persist backend {text!r}; "
                f"expected one of {[b.value for b in cls]}"
            ) from None
