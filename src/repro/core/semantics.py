"""The consistency and durability spectra (paper Section III-B).

Consistency
    * ``INVISIBLE`` — "the system does not handle merging updates into a
      global namespace and it is assumed that middleware or the
      application manages consistency lazily".
    * ``WEAK`` — "merges updates at some time in the future".
    * ``STRONG`` — "updates are seen immediately by all clients".

Durability
    * ``NONE`` — "updates are volatile and will be lost on a failure".
    * ``LOCAL`` — "updates will be retained if the client node recovers
      and reads the updates from local storage".
    * ``GLOBAL`` — "all updates are always recoverable".
"""

from __future__ import annotations

import enum

__all__ = ["Consistency", "Durability"]


class Consistency(enum.Enum):
    """The consistency spectrum (weakest to strongest)."""

    INVISIBLE = "invisible"
    WEAK = "weak"
    STRONG = "strong"

    @classmethod
    def parse(cls, text: str) -> "Consistency":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown consistency {text!r}; "
                f"expected one of {[c.value for c in cls]}"
            ) from None

    def __lt__(self, other: "Consistency") -> bool:
        order = [Consistency.INVISIBLE, Consistency.WEAK, Consistency.STRONG]
        return order.index(self) < order.index(other)


class Durability(enum.Enum):
    """The durability spectrum (weakest to strongest)."""

    NONE = "none"
    LOCAL = "local"
    GLOBAL = "global"

    @classmethod
    def parse(cls, text: str) -> "Durability":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(
                f"unknown durability {text!r}; "
                f"expected one of {[d.value for d in cls]}"
            ) from None

    def __lt__(self, other: "Durability") -> bool:
        order = [Durability.NONE, Durability.LOCAL, Durability.GLOBAL]
        return order.index(self) < order.index(other)
