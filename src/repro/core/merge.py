"""Merge machinery: replaying decoupled journals into the namespace.

Conflict priority implements the paper's ``allow`` semantics: "metadata
from the interfering client will be written and the computation from the
decoupled namespace will take priority at merge time because the results
are more accurate" (§III-C).  Concretely, when a decoupled CREATE
collides with an entry an interfering client produced, the decoupled
event wins: the stale entry is unlinked first.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.journal.events import EventType, JournalEvent
from repro.mds.mdstore import MetadataStore
from repro.mds.server import MetadataServer, Request
from repro.sim.engine import Event

__all__ = ["resolve_conflicts", "merge_journal"]


def resolve_conflicts(
    mdstore: MetadataStore,
    events: List[JournalEvent],
    priority: str = "decoupled",
) -> List[JournalEvent]:
    """Rewrite ``events`` so replay succeeds under the given priority.

    * ``decoupled`` — the journal wins: conflicting existing entries are
      unlinked before the journal's create replays.
    * ``existing`` — the namespace wins: conflicting journal events are
      dropped.

    Only CREATE/MKDIR conflicts need resolution; other ops fail loudly
    at replay if inconsistent.
    """
    if priority not in ("decoupled", "existing"):
        raise ValueError(f"unknown merge priority {priority!r}")
    out: List[JournalEvent] = []
    # Track paths the journal itself creates so we only consult the
    # store for pre-existing (interferer-written) entries.
    journal_creates = set()
    for ev in events:
        if ev.op in (EventType.CREATE, EventType.MKDIR):
            conflict = ev.path not in journal_creates and mdstore.exists(ev.path)
            if conflict:
                existing = mdstore.resolve(ev.path)
                if priority == "existing":
                    continue
                if ev.op == EventType.CREATE and existing.is_file:
                    out.append(
                        JournalEvent(
                            EventType.UNLINK, ev.path, client_id=ev.client_id
                        )
                    )
                elif ev.op == EventType.MKDIR and existing.is_dir:
                    # Directory already exists: keep it, skip the MKDIR.
                    journal_creates.add(ev.path)
                    continue
                else:
                    # Type mismatch: drop the conflicting journal event.
                    continue
            journal_creates.add(ev.path)
        out.append(ev)
    return out


def merge_journal(
    mds: MetadataServer,
    subtree: str,
    client_id: int,
    events: Optional[List[JournalEvent]] = None,
    count: Optional[int] = None,
    priority: str = "decoupled",
) -> Generator[Event, None, dict]:
    """Merge a client journal at the MDS (process body).

    Resolves conflicts per ``priority``, then submits a Volatile Apply
    request.  Returns the server's ``{applied, conflicts}`` summary.
    """
    if events is not None and mds.config.materialize:
        payload: object = resolve_conflicts(mds.mdstore, events, priority)
    elif events is not None:
        payload = events
    elif count is not None:
        payload = count
    else:
        raise ValueError("merge_journal needs events or a count")
    response = yield mds.submit(
        Request("volatile_apply", subtree, client_id, payload=payload)
    )
    if not response.ok:
        raise RuntimeError(f"merge failed: {response.error}")
    return response.value
