"""The composition language: ``+`` sequences, ``||`` parallelizes.

"To compose the mechanisms administrators inject which mechanisms to
run and which to use in parallel using a domain specific language ...
they can be serialized (+) or run in parallel (||)." (paper §III)

Grammar::

    composition := stage ("+" stage)*
    stage       := mech ("||" mech)*
    mech        := identifier

A :class:`CompositionPlan` is a list of stages; each stage is a list of
mechanism names that run concurrently; stages run in order.  Execution
against a cluster lives here too (:meth:`CompositionPlan.execute`), with
the mechanism implementations supplied by :mod:`repro.core.mechanisms`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, List

from repro.sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mechanisms import MechanismContext

__all__ = ["DslError", "CompositionPlan", "parse_composition"]

_NAME_RE = re.compile(r"^[a-z_][a-z0-9_]*$")

#: Mechanisms that act while the workload runs rather than at completion.
WORKLOAD_PHASE = {"rpcs", "append_client_journal", "stream"}


class DslError(ValueError):
    """Malformed or unknown composition."""


@dataclass(frozen=True)
class CompositionPlan:
    """Parsed composition: serial stages of parallel mechanism groups."""

    stages: tuple

    @property
    def mechanisms(self) -> List[str]:
        """All mechanism names in order of first appearance."""
        seen: List[str] = []
        for stage in self.stages:
            for mech in stage:
                if mech not in seen:
                    seen.append(mech)
        return seen

    @property
    def completion_stages(self) -> List[List[str]]:
        """Stages left to run at job completion (workload-phase
        mechanisms like RPCs/Append Client Journal removed)."""
        out = []
        for stage in self.stages:
            remaining = [m for m in stage if m not in WORKLOAD_PHASE]
            if remaining:
                out.append(remaining)
        return out

    @property
    def workload_mode(self) -> str:
        """How operations are performed during the job: ``rpc`` when the
        composition includes RPCs, else ``decoupled``."""
        return "rpc" if "rpcs" in self.mechanisms else "decoupled"

    def canonical(self) -> str:
        return "+".join("||".join(stage) for stage in self.stages)

    def execute(
        self, ctx: "MechanismContext"
    ) -> Generator[Event, None, dict]:
        """Run the completion stages against ``ctx`` (process body).

        Mechanisms within a stage run in parallel (wall time = max);
        stages run serially.  Returns per-mechanism durations.
        """
        from repro.core.mechanisms import run_mechanism

        timings: dict = {}
        for stage in self.completion_stages:
            start = ctx.engine.now
            procs = [
                ctx.engine.process(
                    run_mechanism(mech, ctx), name=f"mech:{mech}"
                )
                for mech in stage
            ]
            yield ctx.engine.all_of(procs)
            for mech in stage:
                timings[mech] = ctx.engine.now - start
        return timings


def parse_composition(text: str, known: set | None = None) -> CompositionPlan:
    """Parse ``"a+b||c"`` into a plan, validating mechanism names.

    ``known`` defaults to the registered mechanism set.
    """
    if known is None:
        from repro.core.mechanisms import MECHANISMS

        known = set(MECHANISMS)
    if not text or not text.strip():
        raise DslError("empty composition")
    stages = []
    for stage_text in text.split("+"):
        group = []
        for mech_text in stage_text.split("||"):
            name = mech_text.strip().lower().replace(" ", "_")
            if not name:
                raise DslError(f"empty mechanism in composition {text!r}")
            if not _NAME_RE.match(name):
                raise DslError(f"invalid mechanism name {name!r}")
            if name not in known:
                raise DslError(
                    f"unknown mechanism {name!r}; known: {sorted(known)}"
                )
            group.append(name)
        stages.append(tuple(group))
    return CompositionPlan(stages=tuple(stages))
