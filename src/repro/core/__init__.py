"""Cudele: programmable consistency and durability for subtrees.

This package is the paper's primary contribution:

* :mod:`~repro.core.semantics` — the consistency (invisible/weak/strong)
  and durability (none/local/global) spectra.
* :mod:`~repro.core.mechanisms` — the composable building blocks
  (RPCs, Append Client Journal, Volatile/Nonvolatile Apply, Stream,
  Local/Global Persist).
* :mod:`~repro.core.dsl` — the composition language: ``+`` sequences
  mechanisms, ``||`` runs them in parallel.
* :mod:`~repro.core.policy` — subtree policies and Table I (the
  semantics matrix mapping each (consistency, durability) cell to a
  mechanism composition).
* :mod:`~repro.core.policyfile` — the ``policies.yml`` format.
* :mod:`~repro.core.namespace_api` — the user-facing API: decouple a
  path with a policies file, retarget semantics dynamically.
* :mod:`~repro.core.merge` — merge machinery with interference priority.
* :mod:`~repro.core.sync` — namespace sync (partial updates for
  read-while-writing).
"""

from repro.core.semantics import Consistency, Durability
from repro.core.dsl import CompositionPlan, DslError, parse_composition
from repro.core.policy import (
    SubtreePolicy,
    TABLE_I,
    SYSTEM_POLICIES,
    composition_for,
    composition_warnings,
)
from repro.core.policyfile import PolicyFileError, dumps_policies, parse_policies
from repro.core.mechanisms import MechanismContext, MECHANISMS, run_mechanism
from repro.core.namespace_api import Cudele, DecoupledNamespace, EmbeddingError
from repro.core.merge import resolve_conflicts, merge_journal
from repro.core.sync import NamespaceSyncStats, synced_workload

__all__ = [
    "Consistency",
    "Durability",
    "CompositionPlan",
    "DslError",
    "parse_composition",
    "SubtreePolicy",
    "TABLE_I",
    "SYSTEM_POLICIES",
    "composition_for",
    "composition_warnings",
    "PolicyFileError",
    "parse_policies",
    "dumps_policies",
    "MechanismContext",
    "MECHANISMS",
    "run_mechanism",
    "Cudele",
    "DecoupledNamespace",
    "EmbeddingError",
    "resolve_conflicts",
    "merge_journal",
    "NamespaceSyncStats",
    "synced_workload",
]
