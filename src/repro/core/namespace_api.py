"""The Cudele namespace API.

"Users control consistency and durability for subtrees by contacting a
daemon in the system called a monitor ... For example,
(msevilla/mydir, policies.yml) would decouple the path 'msevilla/mydir'
and would apply the policies in 'policies.yml'."  (paper §III-C)

:class:`Cudele` is the administrator's handle: ``decouple`` assigns a
policy to a subtree (returning a :class:`DecoupledNamespace` the
application works through), ``retarget`` changes a subtree's semantics
dynamically (paper §VII future work: "dynamically changing semantics of
a subtree from stronger to weaker guarantees (or vice versa)").
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence, Union

from repro.client.decoupled import DecoupledClient
from repro.cluster import Cluster
from repro.core.mechanisms import MechanismContext
from repro.core.policy import SubtreePolicy
from repro.core.policyfile import parse_policies
from repro.core.semantics import Consistency, Durability
from repro.mds.mdstore import FsError
from repro.mds.migrate import migrate_subtree
from repro.mds.server import Request
from repro.sim.engine import Event

__all__ = ["Cudele", "DecoupledNamespace", "EmbeddingError"]


class EmbeddingError(ValueError):
    """A child policy would weaken its parent subtree's guarantees."""


def _policy_semantics(policy: SubtreePolicy) -> tuple:
    """Infer the (Consistency, Durability) cell a policy lands in."""
    mechs = set(policy.plan.mechanisms)
    if "rpcs" in mechs:
        consistency = Consistency.STRONG
    elif {"volatile_apply", "nonvolatile_apply"} & mechs:
        consistency = Consistency.WEAK
    else:
        consistency = Consistency.INVISIBLE
    if {"stream", "global_persist"} & mechs:
        durability = Durability.GLOBAL
    elif "local_persist" in mechs:
        durability = Durability.LOCAL
    else:
        durability = Durability.NONE
    return consistency, durability


class DecoupledNamespace:
    """An application's handle on one policy-governed subtree."""

    def __init__(
        self,
        cudele: "Cudele",
        path: str,
        policy: SubtreePolicy,
        dclient: Optional[DecoupledClient],
    ):
        self.cudele = cudele
        self.cluster: Cluster = cudele.cluster
        self.path = path
        self.policy = policy
        self.dclient = dclient
        self.finalized = False
        self.last_timings: dict = {}

    @property
    def semantics(self) -> tuple:
        return _policy_semantics(self.policy)

    # -- operations -----------------------------------------------------------
    def create_many(
        self, names_or_count: Union[int, Sequence[str]], subdir: str = ""
    ) -> Generator[Event, None, int]:
        """Create files under the subtree per the policy's workload mode."""
        target = self.path.rstrip("/") + ("/" + subdir.strip("/") if subdir else "")
        if self.policy.is_decoupled:
            assert self.dclient is not None
            n = yield self.cluster.engine.process(
                self.dclient.create_many(target, names_or_count)
            )
            return n
        client = self.cudele.rpc_client_for(self)
        resp = yield self.cluster.engine.process(
            client.create_many(target, names_or_count)
        )
        if not resp.ok:
            raise OSError(resp.error)
        return resp.value if isinstance(resp.value, int) else len(resp.value)

    # -- completion -------------------------------------------------------------
    def finalize(self) -> Generator[Event, None, dict]:
        """Run the policy's completion mechanisms (merge/persist).

        "the consistency and durability properties in Table I are not
        guaranteed until all mechanisms in the cell are complete" — the
        returned dict maps each completion mechanism to its duration.
        """
        ctx = MechanismContext(
            cluster=self.cluster,
            subtree=self.path,
            dclient=self.dclient,
            merge_priority="decoupled",
        )
        timings = yield self.cluster.engine.process(
            self.policy.plan.execute(ctx)
        )
        if self.dclient is not None:
            merged = {"volatile_apply", "nonvolatile_apply"} & set(
                self.policy.plan.mechanisms
            )
            if merged:
                self.dclient.journal.clear()
                self.dclient.counted_ops = 0
        self.finalized = True
        self.last_timings = timings
        return timings

    def pending_updates(self) -> int:
        return self.dclient.pending_events if self.dclient else 0


class Cudele:
    """Administrator API over one cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._rpc_clients: dict = {}

    # -- helpers ---------------------------------------------------------------
    def rpc_client_for(self, ns: DecoupledNamespace):
        client = self._rpc_clients.get(ns.path)
        if client is None:
            client = self.cluster.new_client()
            self._rpc_clients[ns.path] = client
        return client

    def _ensure_path(self, path: str) -> None:
        """Create the subtree root (administration-side, zero cost)."""
        mds = self.cluster.mds_for(path)
        if not mds.config.materialize:
            return
        md = mds.mdstore
        parts = [p for p in path.split("/") if p]
        cur = ""
        for part in parts:
            cur += "/" + part
            try:
                md.mkdir(cur)
            except FsError as exc:
                if exc.code != "EEXIST":
                    raise

    def _place(self, path: str, rank: int) -> Generator[Event, None, None]:
        """Honor a policy's ``mds_rank`` placement hint (process body).

        A subtree with no materialized rows is assigned statically via
        the monitor's authority map; a populated subtree is moved by a
        live migration so in-flight traffic keeps being served.
        """
        cluster = self.cluster
        if not 0 <= rank < len(cluster.mds_list):
            raise ValueError(f"policy names MDS rank {rank}, which does not exist")
        if cluster.mon.authority_of(path) == rank:
            return
        src = cluster.mds_for(path)
        populated = False
        if src.config.materialize:
            try:
                src.mdstore.resolve(path)
                populated = True
            except FsError:
                populated = False
        if not populated:
            yield from cluster.mon.set_authority(path, rank, src="cudele")
            return
        result = yield cluster.engine.process(
            migrate_subtree(cluster, path, rank)
        )
        if not result.ok:
            raise RuntimeError(
                f"placement migration of {path} to rank {rank} failed: "
                f"{result.reason}"
            )

    # -- the API ---------------------------------------------------------------
    def decouple(
        self,
        path: str,
        policy: Union[SubtreePolicy, str, None] = None,
        dclient: Optional[DecoupledClient] = None,
        persist_each: bool = False,
    ) -> Generator[Event, None, DecoupledNamespace]:
        """Assign ``policy`` to ``path`` (process body).

        ``policy`` may be a :class:`SubtreePolicy`, the text of a
        policies file, or ``None`` for the defaults.  For decoupled
        policies a :class:`~repro.client.decoupled.DecoupledClient` is
        created (or the one supplied is used) and provisioned with the
        policy's allocated inodes.
        """
        if policy is None:
            policy = SubtreePolicy()
        elif isinstance(policy, str):
            policy = parse_policies(policy)
        # Static gate: reject compositions whose mechanism dependencies
        # cannot hold (e.g. nonvolatile_apply with no journal upstream)
        # before any simulated work happens.
        from repro.analysis.checker import check_plan

        check_plan(policy.plan, raise_on_error=True)
        if policy.mds_rank is not None and len(self.cluster.mds_list) > 1:
            yield from self._place(path, policy.mds_rank)
        self._ensure_path(path)
        if policy.is_decoupled and dclient is None:
            dclient = self.cluster.new_decoupled_client(
                persist_each=persist_each,
                persist_backend=policy.persist_backend,
            )
        if dclient is not None:
            policy.owner_client = dclient.client_id
        version = yield self.cluster.engine.process(
            self.cluster.mon.set_subtree(path, policy)
        )
        mds = self.cluster.mds_for(path)
        # Record the policy in the subtree root's large inode (§IV-C).
        if mds.config.materialize:
            mds.mdstore.set_policy(
                path,
                f"v{version}:consistency={policy.consistency};"
                f"durability={policy.durability};interfere={policy.interfere}",
            )
        # Provision the Allocated Inodes contract.
        if dclient is not None and policy.allocated_inodes > 0:
            resp = yield mds.submit(
                Request(
                    "provision", path, dclient.client_id,
                    count=policy.allocated_inodes,
                )
            )
            if not resp.ok:
                raise RuntimeError(f"inode provisioning failed: {resp.error}")
            dclient.assign_inodes(resp.value)
        return DecoupledNamespace(self, path, policy, dclient)

    def embed(
        self,
        parent: DecoupledNamespace,
        path: str,
        policy: Union[SubtreePolicy, str],
        dclient: Optional[DecoupledClient] = None,
        persist_each: bool = False,
    ) -> Generator[Event, None, DecoupledNamespace]:
        """Embeddable policies (paper §VII future work).

        "child subtrees have specialized features but still maintain
        guarantees of their parent subtrees.  For example, a RAMDisk
        subtree is POSIX IO-compliant but relaxes durability
        constraints, so it can reside under a POSIX IO subtree."

        The maintained guarantee is *consistency*: a child may relax
        durability (the RAMDisk example) but may not weaken the
        parent's consistency; violations raise :class:`EmbeddingError`.
        """
        if isinstance(policy, str):
            policy = parse_policies(policy)
        norm_parent = parent.path.rstrip("/")
        if not (path.rstrip("/") + "/").startswith(norm_parent + "/"):
            raise EmbeddingError(
                f"{path!r} is not inside the parent subtree {parent.path!r}"
            )
        parent_c, _ = _policy_semantics(parent.policy)
        child_c, _ = _policy_semantics(policy)
        if child_c < parent_c:
            raise EmbeddingError(
                f"child consistency {child_c.value!r} weakens the parent's "
                f"{parent_c.value!r}; embedded subtrees must maintain the "
                "parent's consistency guarantee"
            )
        ns = yield self.cluster.engine.process(
            self.decouple(path, policy, dclient=dclient,
                          persist_each=persist_each)
        )
        return ns

    def retarget(
        self, ns: DecoupledNamespace, new_policy: Union[SubtreePolicy, str]
    ) -> Generator[Event, None, DecoupledNamespace]:
        """Dynamically change a subtree's semantics (paper §VII).

        Strengthening consistency merges outstanding updates;
        strengthening durability persists them.  "Cudele makes no
        guarantee until the mechanisms are complete."
        """
        if isinstance(new_policy, str):
            new_policy = parse_policies(new_policy)
        from repro.analysis.checker import check_plan

        check_plan(new_policy.plan, raise_on_error=True)
        old_c, old_d = _policy_semantics(ns.policy)
        new_c, new_d = _policy_semantics(new_policy)
        ctx = MechanismContext(
            cluster=self.cluster, subtree=ns.path, dclient=ns.dclient
        )
        if ns.dclient is not None and ns.pending_updates():
            from repro.core.mechanisms import run_mechanism

            if new_c > old_c or new_c is Consistency.STRONG:
                yield self.cluster.engine.process(
                    run_mechanism("volatile_apply", ctx)
                )
                ns.dclient.journal.clear()
                ns.dclient.counted_ops = 0
            elif new_d > old_d:
                mech = (
                    "global_persist"
                    if new_d is Durability.GLOBAL
                    else "local_persist"
                )
                yield self.cluster.engine.process(run_mechanism(mech, ctx))
        if new_policy.is_decoupled:
            new_policy.owner_client = (
                ns.dclient.client_id if ns.dclient else None
            )
        if new_policy.mds_rank is not None and len(self.cluster.mds_list) > 1:
            # Placement retarget: move the live subtree to the rank the
            # new policy names before the policy itself lands there.
            yield from self._place(ns.path, new_policy.mds_rank)
        yield self.cluster.engine.process(
            self.cluster.mon.set_subtree(ns.path, new_policy)
        )
        return DecoupledNamespace(self, ns.path, new_policy, ns.dclient)

    def recouple(self, ns: DecoupledNamespace) -> Generator[Event, None, dict]:
        """Finalize the subtree and remove its policy (back to inherited)."""
        timings = yield self.cluster.engine.process(ns.finalize())
        yield self.cluster.engine.process(
            self.cluster.mon.clear_subtree(ns.path)
        )
        if ns.dclient is not None:
            self.cluster.mds_for(ns.path).mdstore.inotable.release_unused(
                ns.dclient.client_id
            )
        return timings

    def policy_of(self, path: str) -> Optional[SubtreePolicy]:
        return self.cluster.mon.resolve(path)
