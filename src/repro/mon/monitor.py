"""Versioned subtree-policy map with cluster distribution.

The monitor is deliberately policy-agnostic: it versions and distributes
opaque policy objects keyed by subtree path.  Interpretation belongs to
:mod:`repro.core` (Cudele) and the daemons.  Nearest-ancestor resolution
implements the paper's inheritance rule: "subtrees without policies
inherit the consistency/durability semantics of the parent".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.sim.engine import Engine, Event
from repro.sim.network import Network

__all__ = ["Monitor", "PolicyMapEntry"]

#: Approximate serialized size of one policy-map update on the wire.
POLICY_UPDATE_BYTES = 4096


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise ValueError(f"subtree paths must be absolute: {path!r}")
    norm = "/" + "/".join(p for p in path.split("/") if p)
    return norm


@dataclass(frozen=True)
class PolicyMapEntry:
    """One versioned policy assignment."""

    version: int
    path: str
    policy: Any


class Monitor:
    """Manages and distributes the cluster's subtree policy map."""

    def __init__(self, engine: Engine, network: Network, name: str = "mon0"):
        self.engine = engine
        self.network = network
        self.name = name
        self._policies: Dict[str, Any] = {}
        self.version = 0
        self.history: List[PolicyMapEntry] = []
        #: Daemon endpoint names subscribed to map updates.
        self.subscribers: List[str] = []
        #: MDS authority map: subtree path -> authoritative MDS rank.
        #: Nearest-ancestor resolution, rank 0 by default — the monitor
        #: (not any MDS) owns this map, so authority survives MDS
        #: crashes and there is always exactly one authority per path.
        self._authority: Dict[str, int] = {}
        #: Bumped on every authority change; stale clients and ranks
        #: compare epochs to detect an outdated map.
        self.mds_epoch = 0

    # -- membership -----------------------------------------------------
    def subscribe(self, daemon_name: str) -> None:
        if daemon_name not in self.subscribers:
            self.subscribers.append(daemon_name)

    def unsubscribe(self, daemon_name: str) -> None:
        if daemon_name in self.subscribers:
            self.subscribers.remove(daemon_name)

    # -- policy map updates (process bodies: distribution costs wire time)
    def set_subtree(
        self, path: str, policy: Any, src: str = "client"
    ) -> Generator[Event, None, int]:
        """Assign ``policy`` to ``path``; distributes to all daemons.

        Returns the new map version.
        """
        norm = _normalize(path)
        # Client -> monitor submission.
        yield from self.network.send(src, self.name, POLICY_UPDATE_BYTES)
        self.version += 1
        self._policies[norm] = policy
        self.history.append(PolicyMapEntry(self.version, norm, policy))
        yield from self._distribute()
        return self.version

    def clear_subtree(
        self, path: str, src: str = "client"
    ) -> Generator[Event, None, Optional[int]]:
        """Remove the policy on ``path`` (subtree reverts to inherited).

        Returns the **new** map version when an assignment was actually
        removed.  Clearing a path with no exact assignment is an
        explicit no-op: the submission still pays the client->monitor
        wire cost (the monitor must see the request to reject it), but
        no version is minted, nothing is distributed, and the call
        returns ``None`` — callers can tell "cleared" from "there was
        nothing to clear" instead of receiving the stale old version.
        """
        norm = _normalize(path)
        yield from self.network.send(src, self.name, POLICY_UPDATE_BYTES)
        if norm not in self._policies:
            return None
        self.version += 1
        del self._policies[norm]
        self.history.append(PolicyMapEntry(self.version, norm, None))
        yield from self._distribute()
        return self.version

    def _distribute(self) -> Generator[Event, None, None]:
        sends = [
            self.engine.process(
                self.network.send(self.name, daemon, POLICY_UPDATE_BYTES),
                name=f"policy-update:{daemon}",
            )
            for daemon in self.subscribers
        ]
        if sends:
            yield self.engine.all_of(sends)

    # -- MDS authority map -----------------------------------------------
    def assign_authority(self, path: str, rank: int) -> int:
        """Pin ``path``'s subtree to MDS ``rank`` (bootstrap-time static
        partitioning; no wire cost).  Returns the new MDS-map epoch."""
        norm = _normalize(path)
        self.mds_epoch += 1
        self._authority[norm] = rank
        return self.mds_epoch

    def authority_of(self, path: str) -> int:
        """The MDS rank authoritative for ``path`` (nearest assigned
        ancestor; rank 0 when nothing is assigned)."""
        if not self._authority:
            return 0
        norm = _normalize(path)
        probe = norm
        while True:
            if probe in self._authority:
                return self._authority[probe]
            if probe == "/":
                return 0
            probe = probe.rsplit("/", 1)[0] or "/"

    def set_authority(
        self, path: str, rank: int, src: str = "mds"
    ) -> Generator[Event, None, int]:
        """Retarget ``path``'s authority to ``rank`` (process body).

        This is the migration protocol's commit point: the submission
        and the fan-out to subscribers pay wire time like any policy-map
        update.  Returns the new MDS-map epoch.
        """
        norm = _normalize(path)
        yield from self.network.send(src, self.name, POLICY_UPDATE_BYTES)
        self.mds_epoch += 1
        self._authority[norm] = rank
        yield from self._distribute()
        return self.mds_epoch

    @property
    def authority_paths(self) -> List[str]:
        return sorted(self._authority)

    # -- resolution ------------------------------------------------------
    def resolve(self, path: str) -> Optional[Any]:
        """Policy governing ``path``: nearest ancestor's assignment."""
        entry = self.resolve_entry(path)
        return entry[1] if entry else None

    def resolve_entry(self, path: str) -> Optional[Tuple[str, Any]]:
        """Like :meth:`resolve` but also returns the subtree root path."""
        norm = _normalize(path)
        probe = norm
        while True:
            if probe in self._policies:
                return probe, self._policies[probe]
            if probe == "/":
                return None
            probe = probe.rsplit("/", 1)[0] or "/"

    def authority_entry(self, path: str) -> Optional[Tuple[str, int]]:
        """Like :meth:`authority_of` but also returns the assigned
        subtree root; None when no assignment governs ``path``."""
        probe = _normalize(path)
        while True:
            if probe in self._authority:
                return probe, self._authority[probe]
            if probe == "/":
                return None
            probe = probe.rsplit("/", 1)[0] or "/"

    def subtree_entry(self, path: str) -> Optional[Tuple[str, Any]]:
        """The governing subtree entry for ``path``: the nearest
        decoupled policy if one applies, else the nearest MDS authority
        assignment.  Observability attributes per-subtree op counters
        with this, so authority-pinned (but not decoupled) subtrees are
        visible to the hotspot detector and the migration drill."""
        return self.resolve_entry(path) or self.authority_entry(path)

    def exact(self, path: str) -> Optional[Any]:
        return self._policies.get(_normalize(path))

    @property
    def subtree_paths(self) -> List[str]:
        return sorted(self._policies)
