"""The monitor daemon.

"Users control consistency and durability for subtrees by contacting a
daemon in the system called a monitor, which manages cluster state
changes.  Users present a directory path and a policies configuration
that gets distributed and versioned by the monitor to all daemons in the
system." (paper Section III-C)
"""

from repro.mon.monitor import Monitor, PolicyMapEntry

__all__ = ["Monitor", "PolicyMapEntry"]
