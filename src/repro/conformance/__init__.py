"""Conformance oracle: recorded histories vs. the semantics spectra.

The paper's Table I promises nine different (consistency, durability)
contracts.  This package checks that the simulated system actually
honors them: a :class:`HistoryRecorder` hooks a live cluster and logs
every invoke/complete/visible/persisted/crash/recover transition, a
:class:`ReferenceModel` gives the sequential spec of the namespace, and
:func:`check_history` renders a verdict with one stable violation code
per way a cell's contract can break.  ``python -m repro.conformance``
fans the seeded scenario matrix out (optionally ``--jobs N``) and emits
a canonical JSON verdict artifact.
"""

from repro.conformance.checkers import (
    VIOLATION_CODES,
    Violation,
    check_history,
    verdict_json,
)
from repro.conformance.driver import (
    CELLS,
    run_cell,
    run_matrix,
)
from repro.conformance.history import History, HistoryEvent, MUTATION_OPS
from repro.conformance.model import ModelError, ModelNode, ReferenceModel
from repro.conformance.recorder import HistoryRecorder

__all__ = [
    "CELLS",
    "History",
    "HistoryEvent",
    "HistoryRecorder",
    "MUTATION_OPS",
    "ModelError",
    "ModelNode",
    "ReferenceModel",
    "VIOLATION_CODES",
    "Violation",
    "check_history",
    "run_cell",
    "run_matrix",
    "verdict_json",
]
