"""Seeded conformance exploration over the full semantics matrix.

One *cell run* builds a fresh cluster, attaches the history recorder,
decouples a subtree under one Table I (consistency, durability) policy
and drives a seeded workload through it:

1. a bootstrap RPC client creates the subtree root (journaled, so MDS
   recovery can rebuild under it);
2. burst one of seeded creates/mkdirs/unlinks by the owner;
3. the durability mechanism runs (Local/Global Persist for decoupled
   rows — 'none' persists nothing);
4. the owner crashes and recovers through :mod:`repro.faults`
   (``lose_disk`` for global rows: local durability must not be what
   saves them);
5. burst two, then ``finalize()`` runs the policy's completion
   mechanisms (merge windows for weak rows, journal flush for stream);
6. strong+global additionally crash-recovers the MDS itself — the full
   journal-replay drill;
7. a namespace snapshot closes the history and
   :func:`~repro.conformance.checkers.check_history` renders the
   verdict.

Everything is seeded and simulated-time-only, so a matrix run is
byte-identical across repeats and across ``--jobs`` fan-out
(:func:`repro.bench.harness.parallel_map` preserves task order).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import parallel_map
from repro.cluster import Cluster
from repro.conformance.checkers import check_history
from repro.conformance.recorder import HistoryRecorder
from repro.core.mechanisms import MechanismContext, run_mechanism
from repro.core.namespace_api import Cudele
from repro.core.policy import SubtreePolicy
from repro.faults import PERSIST_FAULT_MODES, FaultInjector, FaultPlan
from repro.mds.server import MDSConfig
from repro.sim.rng import RngStream

__all__ = [
    "CELLS", "CONSISTENCIES", "DURABILITIES", "SUBTREE",
    "CORRUPTION_CELLS",
    "run_cell", "run_matrix", "report_json",
    "run_corruption_cell", "run_corruption_drill",
]

CONSISTENCIES = ("invisible", "weak", "strong")
DURABILITIES = ("none", "local", "global")
#: The nine Table I cells, row-major.
CELLS: Tuple[Tuple[str, str], ...] = tuple(
    (c, d) for c in CONSISTENCIES for d in DURABILITIES
)
SUBTREE = "/job"
#: Operations per workload burst (two bursts per cell).
BURST_OPS = 12
#: Small segments so MDS journal writes land mid-run, not only at flush.
SEGMENT_EVENTS = 16
#: The corruption drill: every durability scope crossed with every
#: persist fault mode (durability 'none' persists nothing — its row
#: proves the armed fault stays a no-op).
CORRUPTION_CELLS: Tuple[Tuple[str, str], ...] = tuple(
    (d, m) for d in DURABILITIES for m in PERSIST_FAULT_MODES
)


def _run_burst(cluster, worker, rng: RngStream, tracked: List[str],
               phase: int) -> None:
    """One seeded burst: a phase directory, then a create/unlink mix."""
    subdir = f"{SUBTREE}/d{phase}"
    cluster.run(worker.mkdir(subdir))
    for i in range(BURST_OPS):
        if rng.uniform() < 0.75 or not tracked:
            parent = SUBTREE if rng.uniform() < 0.5 else subdir
            name = f"f{phase}-{i}"
            cluster.run(worker.create_many(parent, [name]))
            tracked.append(f"{parent}/{name}")
        else:
            victim = tracked.pop(rng.integers(0, len(tracked)))
            cluster.run(worker.unlink(victim))


def _run_persist(cluster, ns, durability: str) -> None:
    """Make burst-one durable per the cell's scope (decoupled rows)."""
    if ns.dclient is None or durability == "none":
        return
    mech = "local_persist" if durability == "local" else "global_persist"
    ctx = MechanismContext(cluster, SUBTREE, ns.dclient)
    cluster.run(run_mechanism(mech, ctx))


def _crash_recover(cluster, target: str, mode: str,
                   lose_disk: bool = False) -> None:
    """Crash ``target`` 5 ms from now, recover it 45 ms later."""
    t = cluster.now
    plan = FaultPlan()
    if lose_disk:
        plan.crash(t + 0.005, target, lose_disk=True)
    else:
        plan.crash(t + 0.005, target)
    plan.recover(t + 0.050, target, mode=mode)
    FaultInjector(cluster, plan).start()
    cluster.run()


def run_cell(task: Tuple) -> Dict:
    """Run one (consistency, durability, seed[, obs[, migrate]])
    scenario; returns a dict with the checker ``verdict`` and the
    canonical ``history`` text (plus an ``obs`` summary when the 4th
    task element is true).

    A true 5th task element runs the cell on a two-rank cluster and
    injects one live subtree migration (rank 0 -> 1) between the owner
    crash drill and burst two — the namespace moves mid-run, with the
    same workload, mechanisms and verdict machinery on top.  Without
    the flag the single-MDS path is character-for-character unchanged.

    Top-level and picklable so :func:`parallel_map` can fan the matrix
    out over processes; the output contains no wall-clock state, so
    serial and parallel runs are byte-identical.
    """
    consistency, durability, seed = task[:3]
    with_obs = bool(task[3]) if len(task) > 3 else False
    migrate = bool(task[4]) if len(task) > 4 else False
    cluster = Cluster(
        seed=seed, mds_config=MDSConfig(segment_events=SEGMENT_EVENTS),
        num_mds=2 if migrate else 1,
    )
    if migrate:
        cluster.assign_subtree_mds(SUBTREE, 0)
    recorder = HistoryRecorder.attach(cluster)
    obs = None
    if with_obs:
        # Attach after the recorder so the object-store hook chains;
        # detach (below) before the recorder for the same reason.
        from repro.obs import Observability

        obs = Observability(cluster).attach()
    try:
        cudele = Cudele(cluster)
        boot = cluster.new_client()
        cluster.run(boot.mkdir(SUBTREE))
        policy = SubtreePolicy.from_semantics(
            consistency, durability, allocated_inodes=2048
        )
        ns = cluster.run(cudele.decouple(SUBTREE, policy))
        worker = ns.dclient if ns.dclient is not None else boot
        owner = worker.name

        rng = RngStream(seed, f"conformance/{consistency}/{durability}")
        tracked: List[str] = []
        _run_burst(cluster, worker, rng, tracked, 0)
        _run_persist(cluster, ns, durability)
        if ns.dclient is not None:
            _crash_recover(
                cluster, owner,
                mode="global" if durability == "global" else "local",
                lose_disk=(durability == "global"),
            )
        else:
            _crash_recover(cluster, owner, mode="local")
        if migrate:
            # The tentpole drill: hand the live subtree to rank 1 while
            # the workload is mid-run.  Burst two and every completion
            # mechanism below then lands on the new authority (clients
            # follow redirects; MechanismContext re-resolves per call).
            from repro.mds.migrate import migrate_subtree

            res = cluster.run(migrate_subtree(cluster, SUBTREE, 1))
            if res.status != "done":
                raise RuntimeError(
                    f"mid-run migration failed: {res.status} {res.reason}"
                )
        _run_burst(cluster, worker, rng, tracked, 1)
        cluster.run(ns.finalize())
        if (consistency, durability) == ("strong", "global"):
            # The journal-replay drill: the MDS's memory dies after the
            # Stream flush; recovery must rebuild from the object store.
            target = cluster.mds_for(SUBTREE) if migrate else cluster.mds
            _crash_recover(cluster, target.name, mode="local")
        recorder.record_snapshot(
            cluster.mds_for(SUBTREE) if migrate else cluster.mds, SUBTREE
        )

        verdict = check_history(
            recorder.history, consistency, durability,
            subtree=SUBTREE, owner=owner,
        )
        verdict["seed"] = seed
        result = {"verdict": verdict, "history": recorder.history.canonical()}
        if obs is not None:
            from repro.obs.report import breakdown_rows

            result["obs"] = {
                "breakdown": breakdown_rows(obs.hub),
                "span_count": len(obs.tracer.spans),
                "metric_count": len(obs.hub),
            }
        return result
    finally:
        if obs is not None:
            obs.detach()
        recorder.detach()


def run_corruption_cell(task: Tuple) -> Dict:
    """One corrupted-recovery drill cell: ``(durability, mode, seed[,
    obs])`` under invisible consistency.

    The owner runs a seeded burst, the injector arms the cell's persist
    fault, the durability mechanism persists *through* the fault (the
    image lands damaged), the owner crashes and recovers — and the
    checkers hold the recovered state to exactly the damaged image's
    checksummed-valid prefix.  Like :func:`run_cell`, top-level and
    picklable, with no wall-clock state in the output.
    """
    durability, mode, seed = task[:3]
    with_obs = bool(task[3]) if len(task) > 3 else False
    cluster = Cluster(
        seed=seed, mds_config=MDSConfig(segment_events=SEGMENT_EVENTS)
    )
    recorder = HistoryRecorder.attach(cluster)
    obs = None
    if with_obs:
        from repro.obs import Observability

        obs = Observability(cluster).attach()
    try:
        cudele = Cudele(cluster)
        boot = cluster.new_client()
        cluster.run(boot.mkdir(SUBTREE))
        policy = SubtreePolicy.from_semantics(
            "invisible", durability, allocated_inodes=2048
        )
        ns = cluster.run(cudele.decouple(SUBTREE, policy))
        worker = ns.dclient
        owner = worker.name

        rng = RngStream(seed, f"conformance/corrupt/{durability}/{mode}")
        tracked: List[str] = []
        _run_burst(cluster, worker, rng, tracked, 0)

        scope = "global" if durability == "global" else "local"
        plan = FaultPlan().persist_fault(
            cluster.now + 0.001, owner, mode, seed=seed, scope=scope
        )
        FaultInjector(cluster, plan).start()
        cluster.run()

        _run_persist(cluster, ns, durability)
        _crash_recover(
            cluster, owner,
            mode="global" if durability == "global" else "local",
            lose_disk=(durability == "global"),
        )
        recorder.record_snapshot(cluster.mds, SUBTREE)

        verdict = check_history(
            recorder.history, "invisible", durability,
            subtree=SUBTREE, owner=owner,
        )
        verdict["seed"] = seed
        verdict["fault_mode"] = mode
        result = {"verdict": verdict, "history": recorder.history.canonical()}
        if obs is not None:
            from repro.obs.report import breakdown_rows

            result["obs"] = {
                "breakdown": breakdown_rows(obs.hub),
                "span_count": len(obs.tracer.spans),
                "metric_count": len(obs.hub),
            }
        return result
    finally:
        if obs is not None:
            obs.detach()
        recorder.detach()


def run_corruption_drill(
    seed: int = 0,
    jobs: Optional[int] = None,
    cells: Sequence[Tuple[str, str]] = CORRUPTION_CELLS,
    obs: bool = False,
) -> Dict:
    """Run the corrupted-recovery drill (durability x fault mode) under
    one seed; byte-identical across repeats and ``--jobs`` fan-out."""
    tasks = [(d, m, seed, obs) for (d, m) in cells]
    results = parallel_map(run_corruption_cell, tasks, jobs=jobs)
    report = {
        "seed": seed,
        "subtree": SUBTREE,
        "drill": "corruption",
        "ok": all(r["verdict"]["ok"] for r in results),
        "cells": [r["verdict"] for r in results],
        "histories": {
            f"{d}/{m}": r["history"]
            for (d, m), r in zip(cells, results)
        },
    }
    if obs:
        report["obs"] = {
            f"{d}/{m}": r["obs"]
            for (d, m), r in zip(cells, results)
        }
    return report


def run_matrix(
    seed: int = 0,
    jobs: Optional[int] = None,
    cells: Sequence[Tuple[str, str]] = CELLS,
    obs: bool = False,
    migrate: bool = False,
) -> Dict:
    """Check every requested cell under one seed; returns the report.

    With ``obs=True`` each cell also runs instrumented (metrics + span
    tracing chained over the history recorder) and the report gains a
    per-cell ``obs`` section.  Verdicts and histories are identical
    either way — observation is pure host-side bookkeeping.

    With ``migrate=True`` every cell runs on a two-rank cluster with
    one live subtree migration injected mid-run (the migration drill;
    see :func:`run_cell`).
    """
    tasks = [(c, d, seed, obs, migrate) for (c, d) in cells]
    results = parallel_map(run_cell, tasks, jobs=jobs)
    report = {
        "seed": seed,
        "subtree": SUBTREE,
        "ok": all(r["verdict"]["ok"] for r in results),
        "cells": [r["verdict"] for r in results],
        "histories": {
            f"{c}/{d}": r["history"]
            for (c, d), r in zip(cells, results)
        },
    }
    if migrate:
        report["drill"] = "migrate"
    if obs:
        report["obs"] = {
            f"{c}/{d}": r["obs"]
            for (c, d), r in zip(cells, results)
        }
    return report


def report_json(report: Dict, with_histories: bool = False) -> str:
    """Canonical JSON artifact text for a matrix report."""
    out = dict(report)
    if not with_histories:
        out.pop("histories", None)
    return json.dumps(out, sort_keys=True, indent=2) + "\n"
