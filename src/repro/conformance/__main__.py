"""``python -m repro.conformance`` — the seeded exploration driver.

Runs every requested (consistency, durability) cell of the semantics
matrix under a fixed seed, checks each recorded history with the
conformance oracle and writes a canonical JSON verdict artifact.
``--corruption`` runs the corrupted-recovery drill instead: every
durability scope crossed with every persist fault mode (torn, reorder,
partial, bitflip), recovery held to the damaged image's
checksummed-valid prefix.  Exit status 0 means every cell conformed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.conformance.driver import (
    CELLS,
    CORRUPTION_CELLS,
    report_json,
    run_corruption_drill,
    run_matrix,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="Check recorded histories against the consistency x "
                    "durability spectra (Table I).",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="workload/cluster seed (default 0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the matrix (default 1; "
                        "output is byte-identical at any value)")
    parser.add_argument("--cell", action="append", metavar="C:D",
                        help="restrict to a cell like strong:global "
                        "(repeatable; default: all nine); with "
                        "--corruption, durability:mode like local:torn")
    parser.add_argument("--corruption", action="store_true",
                        help="run the corrupted-recovery drill "
                        "(durability x fault mode) instead of the "
                        "semantics matrix")
    parser.add_argument("--migrate", action="store_true",
                        help="run each matrix cell on a two-rank cluster "
                        "with a live subtree migration injected mid-run "
                        "(the migration drill); verdict criteria are "
                        "unchanged")
    parser.add_argument("--out", metavar="FILE",
                        help="write the JSON verdict artifact here")
    parser.add_argument("--histories", action="store_true",
                        help="embed each cell's canonical history in the "
                        "artifact (larger, fully reproducible record)")
    parser.add_argument("--obs", action="store_true",
                        help="run each cell instrumented (repro.obs) and "
                        "embed per-cell metric/span summaries; verdicts "
                        "are unchanged")
    args = parser.parse_args(argv)

    known = CORRUPTION_CELLS if args.corruption else CELLS
    cells = list(known)
    if args.cell:
        cells = []
        for spec in args.cell:
            a, _, b = spec.partition(":")
            if (a, b) not in known:
                if args.corruption:
                    parser.error(
                        f"unknown drill cell {spec!r}; expected "
                        "durability:mode from none/local/global x "
                        "torn/reorder/partial/bitflip"
                    )
                parser.error(
                    f"unknown cell {spec!r}; expected consistency:durability "
                    "from invisible/weak/strong x none/local/global"
                )
            cells.append((a, b))

    if args.corruption and args.migrate:
        parser.error("--migrate applies to the semantics matrix, "
                     "not the corruption drill")
    if args.corruption:
        report = run_corruption_drill(
            seed=args.seed, jobs=args.jobs, cells=cells, obs=args.obs
        )
        for verdict in report["cells"]:
            status = "ok" if verdict["ok"] else "FAIL"
            print(
                f"{verdict['durability']:>7}/{verdict['fault_mode']:<8} "
                f"events={verdict['events']:4d} {status}"
            )
            for violation in verdict["violations"]:
                print(f"    {violation['code']}: {violation['message']}")
        print(f"corruption drill seed={report['seed']}: "
              + ("all cells conform" if report["ok"]
                 else "violations found"))
    else:
        report = run_matrix(seed=args.seed, jobs=args.jobs, cells=cells,
                            obs=args.obs, migrate=args.migrate)
        for verdict in report["cells"]:
            status = "ok" if verdict["ok"] else "FAIL"
            print(
                f"{verdict['consistency']:>9}/{verdict['durability']:<6} "
                f"events={verdict['events']:4d} {status}"
            )
            for violation in verdict["violations"]:
                print(f"    {violation['code']}: {violation['message']}")
        label = "migration drill" if args.migrate else "matrix"
        print(f"{label} seed={report['seed']}: "
              + ("all cells conform" if report["ok"]
                 else "violations found"))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report_json(report, with_histories=args.histories))
        print(f"wrote {args.out}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
