"""Recorded operation histories: the conformance oracle's input.

A :class:`History` is an append-only log of :class:`HistoryEvent`
records with simulated timestamps, produced by the
:class:`~repro.conformance.recorder.HistoryRecorder` while a scenario
runs.  The checkers in :mod:`repro.conformance.checkers` consume it;
nothing in here knows about the cluster.

Event kinds
-----------

``invoke`` / ``complete``
    A client submitted an operation / observed its acknowledgement.
    ``op_id`` correlates the pair; ``ok``/``error`` land on the
    completion.
``visible``
    The mutation became observable to *every* client: it landed in the
    MDS's authoritative metadata store (either synchronously under
    RPCs, or at merge time under Volatile Apply).
``persisted``
    The update reached stable storage; ``scope`` says which kind
    ("local" = the client's own disk, "global" = the object store).
``persist_fault``
    A persist landed damaged (torn/reordered/partial/bit-flipped, per
    :mod:`repro.faults.corrupt`): ``detail`` carries the fault ``mode``
    plus the ``valid_seq``/``valid_events`` of the longest
    checksummed-valid prefix — the most recovery may restore from this
    image, superseding the full claims recorded just before it.
``merge_begin`` / ``merge_end``
    A client journal is being replayed at the MDS (Volatile Apply).
``crash`` / ``recover``
    Component failure markers (driven by :mod:`repro.faults`).
``recovered``
    One update restored during recovery (from local disk, the object
    store, or an MDS journal replay).
``migrate``
    A live subtree migration changed phase; ``detail`` carries the
    phase (``begin``/``commit``/``abort``), the source and destination
    MDS names and the monitor's MDS-map epoch.  Exactly-one-authority
    is judged from these records.
``snapshot``
    A full listing of the authoritative namespace under the scenario's
    subtree, taken by the driver at a quiescent point.

The canonical serialization is JSON-lines with sorted keys and ``None``
fields dropped — byte-identical for identical runs, diffable, and safe
to check into golden-history regression tests.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

__all__ = ["HistoryEvent", "History", "KINDS", "MUTATION_OPS"]

#: Every event kind a history may carry.
KINDS = (
    "invoke",
    "complete",
    "visible",
    "persisted",
    "persist_fault",
    "merge_begin",
    "merge_end",
    "crash",
    "recover",
    "recovered",
    "migrate",
    "snapshot",
)

#: Operations that mutate the namespace (the ops the consistency and
#: durability contracts constrain; reads ride along uninterpreted).
MUTATION_OPS = frozenset(
    {"create", "mkdir", "unlink", "rmdir", "rename", "setattr"}
)


@dataclass
class HistoryEvent:
    """One record in a history (``None`` fields are not serialized)."""

    t: float
    kind: str
    actor: str
    op: Optional[str] = None
    path: Optional[str] = None
    ino: Optional[int] = None
    seq: Optional[int] = None
    op_id: Optional[int] = None
    client: Optional[int] = None
    scope: Optional[str] = None
    ok: Optional[bool] = None
    error: Optional[str] = None
    target: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown history event kind {self.kind!r}; known: {KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out = {k: v for k, v in asdict(self).items() if v not in (None, {})}
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HistoryEvent":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown history event fields {sorted(unknown)}")
        return cls(**data)

    def __str__(self) -> str:
        bits = [f"[{self.t:.6f}] {self.kind} {self.actor}"]
        if self.op:
            bits.append(self.op)
        if self.path:
            bits.append(self.path)
        return " ".join(bits)


class History:
    """An append-only, serializable log of history events."""

    def __init__(self, events: Optional[Iterable[HistoryEvent]] = None):
        self.events: List[HistoryEvent] = list(events or [])

    def append(self, event: HistoryEvent) -> HistoryEvent:
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[HistoryEvent]:
        return iter(self.events)

    # -- queries ----------------------------------------------------------
    def of_kind(self, *kinds: str) -> List[HistoryEvent]:
        return [e for e in self.events if e.kind in kinds]

    def by_actor(self, actor: str) -> List[HistoryEvent]:
        return [e for e in self.events if e.actor == actor]

    # -- serialization ----------------------------------------------------
    def canonical(self) -> str:
        """Canonical JSON-lines form (sorted keys, compact separators).

        Identical runs must produce identical bytes; the golden-history
        tests and the serial-vs-parallel identity guard depend on it.
        """
        return "\n".join(
            json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
            for e in self.events
        ) + ("\n" if self.events else "")

    @classmethod
    def from_canonical(cls, text: str) -> "History":
        events = [
            HistoryEvent.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        return cls(events)

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.canonical())

    @classmethod
    def load(cls, path) -> "History":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_canonical(fh.read())
