"""A sequential reference model of the namespace.

A pure-python specification of what create/mkdir/unlink/rmdir/rename/
setattr/stat/readdir *mean*, independent of the simulated MDS: the
conformance checkers replay recorded histories against it and the
stateful tests drive it in lock-step with a live cluster.

Journal merges reuse the ordering rules of
:func:`repro.core.merge.resolve_conflicts` verbatim — the model duck-
types the two methods that function needs (``exists``/``resolve``), so
the spec and the implementation cannot drift apart on conflict
priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.merge import resolve_conflicts
from repro.journal.events import EventType, JournalEvent

__all__ = ["ModelNode", "ModelError", "ReferenceModel"]


class ModelError(Exception):
    """A rejected operation (carries a POSIX-ish code)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


@dataclass
class ModelNode:
    """One namespace entry in the model."""

    ino: int
    is_dir: bool
    mode: int = 0o644

    @property
    def is_file(self) -> bool:
        return not self.is_dir


def _norm(path: str) -> str:
    if not path.startswith("/"):
        raise ModelError("EINVAL", f"path must be absolute: {path!r}")
    return "/" + "/".join(p for p in path.split("/") if p)


def _parent(path: str) -> str:
    return path.rsplit("/", 1)[0] or "/"


class ReferenceModel:
    """The namespace spec: a path-indexed tree with POSIX-shaped rules."""

    def __init__(self) -> None:
        self.nodes: Dict[str, ModelNode] = {
            "/": ModelNode(ino=1, is_dir=True, mode=0o755)
        }
        self.used_inos: Set[int] = set()

    # -- duck-typed surface for repro.core.merge.resolve_conflicts --------
    def exists(self, path: str) -> bool:
        return _norm(path) in self.nodes

    def resolve(self, path: str) -> ModelNode:
        node = self.nodes.get(_norm(path))
        if node is None:
            raise ModelError("ENOENT", path)
        return node

    # -- mutations --------------------------------------------------------
    def _check_new(self, path: str, ino: int) -> str:
        path = _norm(path)
        if path == "/":
            raise ModelError("EINVAL", "cannot create /")
        parent = self.nodes.get(_parent(path))
        if parent is None:
            raise ModelError("ENOENT", _parent(path))
        if not parent.is_dir:
            raise ModelError("ENOTDIR", _parent(path))
        if path in self.nodes:
            raise ModelError("EEXIST", path)
        if ino and ino in self.used_inos:
            raise ModelError(
                "EDUPINO", f"inode {ino} already allocated in this namespace"
            )
        return path

    def create(self, path: str, ino: int = 0, mode: int = 0o644) -> ModelNode:
        path = self._check_new(path, ino)
        node = ModelNode(ino=ino, is_dir=False, mode=mode)
        self.nodes[path] = node
        if ino:
            self.used_inos.add(ino)
        return node

    def mkdir(self, path: str, ino: int = 0, mode: int = 0o755) -> ModelNode:
        path = self._check_new(path, ino)
        node = ModelNode(ino=ino, is_dir=True, mode=mode)
        self.nodes[path] = node
        if ino:
            self.used_inos.add(ino)
        return node

    def _children(self, path: str) -> List[str]:
        prefix = path.rstrip("/") + "/"
        return [
            p for p in self.nodes
            if p.startswith(prefix) and "/" not in p[len(prefix):]
        ]

    def unlink(self, path: str) -> None:
        node = self.resolve(path)
        if node.is_dir:
            raise ModelError("EISDIR", path)
        del self.nodes[_norm(path)]

    def rmdir(self, path: str) -> None:
        path = _norm(path)
        node = self.resolve(path)
        if not node.is_dir:
            raise ModelError("ENOTDIR", path)
        if self._children(path):
            raise ModelError("ENOTEMPTY", path)
        del self.nodes[path]

    def rename(self, src: str, dst: str) -> None:
        src, dst = _norm(src), _norm(dst)
        node = self.resolve(src)
        if dst in self.nodes:
            raise ModelError("EEXIST", dst)
        dst_parent = self.nodes.get(_parent(dst))
        if dst_parent is None:
            raise ModelError("ENOENT", _parent(dst))
        if not dst_parent.is_dir:
            raise ModelError("ENOTDIR", _parent(dst))
        if node.is_dir and (dst + "/").startswith(src + "/"):
            raise ModelError("EINVAL", f"cannot move {src} into itself")
        moved = {src: node}
        if node.is_dir:
            for p in list(self.nodes):
                if p.startswith(src + "/"):
                    moved[p] = self.nodes[p]
        for p, n in moved.items():
            del self.nodes[p]
            self.nodes[dst + p[len(src):]] = n

    def setattr(self, path: str, mode: Optional[int] = None) -> ModelNode:
        node = self.resolve(path)
        if mode is not None:
            node.mode = (node.mode & ~0o7777) | (mode & 0o7777)
        return node

    # -- reads ------------------------------------------------------------
    def stat(self, path: str) -> ModelNode:
        return self.resolve(path)

    def readdir(self, path: str) -> List[str]:
        node = self.resolve(path)
        if not node.is_dir:
            raise ModelError("ENOTDIR", path)
        prefix = _norm(path).rstrip("/") + "/"
        return sorted(p[len(prefix):] for p in self._children(_norm(path)))

    def ensure_dirs(self, path: str) -> None:
        """Create every missing ancestor of ``path`` plus ``path`` itself
        (mirrors ``Cudele._ensure_path``, which is administration-side
        and free)."""
        cur = ""
        for part in [p for p in _norm(path).split("/") if p]:
            cur += "/" + part
            if cur not in self.nodes:
                self.mkdir(cur)

    # -- replay -----------------------------------------------------------
    def apply(
        self,
        op: str,
        path: str,
        ino: int = 0,
        target: Optional[str] = None,
        mode: Optional[int] = None,
    ) -> Tuple[bool, Optional[str]]:
        """Apply one operation; returns ``(ok, error_code)``.

        The op vocabulary matches recorded histories (and journal event
        types lower-cased).  Illegal operations leave the model
        untouched and report their rejection code.
        """
        try:
            if op == "create":
                self.create(path, ino=ino)
            elif op == "mkdir":
                self.mkdir(path, ino=ino)
            elif op == "unlink":
                self.unlink(path)
            elif op == "rmdir":
                self.rmdir(path)
            elif op == "rename":
                if target is None:
                    raise ModelError("EINVAL", "rename needs a target")
                self.rename(path, target)
            elif op == "setattr":
                self.setattr(path, mode=mode)
            elif op in ("stat", "lookup"):
                self.stat(path)
            elif op in ("ls", "readdir"):
                self.readdir(path)
            else:
                raise ModelError("EINVAL", f"unknown op {op!r}")
        except ModelError as exc:
            return False, exc.code
        return True, None

    def apply_journal_event(self, event: JournalEvent) -> Tuple[bool, Optional[str]]:
        op = EventType(event.op).name.lower()
        if op in ("noop", "subtree_policy"):
            return True, None
        return self.apply(
            op, event.path, ino=event.ino, target=event.target_path
        )

    def merge(
        self, events: List[JournalEvent], priority: str = "decoupled"
    ) -> Dict[str, int]:
        """Merge a client journal under the paper's conflict priority.

        Delegates conflict resolution to
        :func:`repro.core.merge.resolve_conflicts` (the model satisfies
        its ``exists``/``resolve`` surface), then applies the resolved
        sequence, skipping events that still fail — exactly what the
        MDS's Volatile Apply handler does.  Returns
        ``{"applied": n, "conflicts": m}``.
        """
        resolved = resolve_conflicts(self, events, priority)
        applied = conflicts = 0
        for ev in resolved:
            ok, _ = self.apply_journal_event(ev)
            if ok:
                applied += 1
            else:
                conflicts += 1
        return {"applied": applied, "conflicts": conflicts}

    # -- comparison views -------------------------------------------------
    def paths_under(self, subtree: str) -> List[Tuple[str, str]]:
        """Sorted ``(path, kind)`` entries strictly below ``subtree``."""
        prefix = _norm(subtree).rstrip("/") + "/"
        return sorted(
            (p, "dir" if n.is_dir else "file")
            for p, n in self.nodes.items()
            if p.startswith(prefix)
        )

    def __len__(self) -> int:
        return len(self.nodes)
