"""History recording: lightweight hooks over a live cluster.

``HistoryRecorder.attach(cluster)`` wires itself into every component
that can witness a consistency- or durability-relevant transition:

* clients (``repro.client.client.Client``) and decoupled clients
  (``repro.client.decoupled.DecoupledClient``) report operation
  invocations/completions, crashes, recoveries and local persists;
* the MDS (``repro.mds.server.MetadataServer``) reports the moment a
  mutation becomes globally visible (its authoritative store changed),
  merge windows (Volatile Apply) and journal-replay recoveries;
* the object layer (``repro.rados.objects.RadosObject.on_mutate``)
  reports bytes landing in the object store, which the recorder
  interprets into *global* persistence events for client and MDS
  journals.

Recording is pure observation: no hook touches the DES engine, so an
instrumented run is simulation-identical to a bare one.  Only one
recorder may be attached per process at a time (the object-layer hook
is a class attribute); :meth:`detach` releases it.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.conformance.history import History, HistoryEvent
from repro.journal.events import EventType, JournalEvent
from repro.rados.objects import RadosObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.client.decoupled import DecoupledClient
    from repro.cluster import Cluster
    from repro.mds.server import MetadataServer, Request

__all__ = ["HistoryRecorder"]

#: Striped journal object names: "<owner>.journal.<hex stripe index>"
#: (see :meth:`repro.rados.striper.Striper.object_name`).
_JOURNAL_OBJECT = re.compile(r"^(?P<owner>[A-Za-z0-9_]+)\.journal\.[0-9a-f]+$")


class HistoryRecorder:
    """Builds a :class:`~repro.conformance.history.History` from hooks."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.engine = cluster.engine
        self.history = History()
        self._next_op_id = 1
        self._attached = False
        #: Highest journal seq already recorded as persisted, per
        #: (owner name, scope) — persists are idempotent snapshots, the
        #: history wants each update persisted once per scope.
        self._persist_marks: Dict[tuple, int] = {}
        #: Real (materialized) events the MDS has journaled, per MDS
        #: name, in log order; object-store journal writes are resolved
        #: against it to emit global-persist records.
        self._mds_journaled: Dict[str, List[JournalEvent]] = {}
        self._mds_persisted: Dict[str, int] = {}
        #: Mutation-only persisted seq per MDS (protocol markers ride in
        #: the journal but carry no namespace update to persist).
        self._mds_persisted_muts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, cluster: "Cluster") -> "HistoryRecorder":
        """Create a recorder and hook it into ``cluster``."""
        recorder = cls(cluster)
        if RadosObject.on_mutate is not None:
            raise RuntimeError(
                "another HistoryRecorder is already attached in this process"
            )
        cluster.recorder = recorder
        for mds in cluster.mds_list:
            mds.recorder = recorder
        for client in cluster._clients:
            client.recorder = recorder
        for dclient in cluster._dclients:
            dclient.recorder = recorder
        RadosObject.on_mutate = recorder._on_object_mutate
        recorder._attached = True
        return recorder

    def detach(self) -> None:
        """Release every hook (idempotent)."""
        if not self._attached:
            return
        self._attached = False
        RadosObject.on_mutate = None
        self.cluster.recorder = None
        for mds in self.cluster.mds_list:
            mds.recorder = None
        for client in self.cluster._clients:
            client.recorder = None
        for dclient in self.cluster._dclients:
            dclient.recorder = None

    def _emit(self, **kw) -> HistoryEvent:
        return self.history.append(HistoryEvent(t=self.engine.now, **kw))

    # ------------------------------------------------------------------
    # client-side hooks (invocations and completions)
    # ------------------------------------------------------------------
    def record_invoke(
        self,
        actor: str,
        op: str,
        paths: Sequence[str],
        client_id: int,
    ) -> List[int]:
        """One ``invoke`` per affected path; returns their op ids."""
        ids = []
        for path in paths:
            op_id = self._next_op_id
            self._next_op_id += 1
            self._emit(
                kind="invoke", actor=actor, op=op, path=path,
                op_id=op_id, client=client_id,
            )
            ids.append(op_id)
        return ids

    def record_complete(
        self,
        actor: str,
        op_ids: Sequence[int],
        ok: bool,
        error: Optional[str] = None,
        events: Optional[Sequence[JournalEvent]] = None,
    ) -> None:
        """Completions for earlier invokes.

        ``events`` (decoupled appends) carries the journal records the
        acknowledgement covers, aligning seq/ino per op id.
        """
        for i, op_id in enumerate(op_ids):
            extra = {}
            if events is not None and i < len(events):
                extra = {"seq": events[i].seq, "ino": events[i].ino or None}
            self._emit(
                kind="complete", actor=actor, op_id=op_id,
                ok=ok, error=error, **extra,
            )

    @staticmethod
    def request_paths(request: "Request") -> List[str]:
        """The full paths one MDS request touches."""
        if request.names is not None:
            base = request.path.rstrip("/")
            return [f"{base}/{name}" for name in request.names]
        return [request.path]

    # ------------------------------------------------------------------
    # MDS-side hooks (visibility, merges, recovery)
    # ------------------------------------------------------------------
    def record_visible(
        self,
        actor: str,
        op: str,
        path: str,
        ino: int = 0,
        client_id: int = 0,
        target: Optional[str] = None,
    ) -> None:
        self._emit(
            kind="visible", actor=actor, op=op, path=path,
            ino=ino or None, client=client_id, target=target,
        )

    def record_merge_begin(self, actor: str, subtree: str, client_id: int,
                           count: int) -> None:
        self._emit(
            kind="merge_begin", actor=actor, path=subtree, client=client_id,
            detail={"count": count},
        )

    def record_merge_end(self, actor: str, subtree: str, client_id: int,
                         applied: int, conflicts: int) -> None:
        self._emit(
            kind="merge_end", actor=actor, path=subtree, client=client_id,
            detail={"applied": applied, "conflicts": conflicts},
        )

    def note_mds_journaled(
        self, mds: "MetadataServer", events: Sequence[JournalEvent]
    ) -> None:
        """The MDS appended real events to its (segmented) journal; they
        become *globally persisted* when their segment's object write
        lands (seen via the object-layer hook)."""
        self._mds_journaled.setdefault(mds.name, []).extend(events)

    def note_mds_export(
        self, mds: "MetadataServer", removed: Sequence[JournalEvent]
    ) -> None:
        """A subtree migration lifted undispatched events out of
        ``mds``'s open segment; drop their mirror entries.  Extraction
        only ever touches the open segment, which is the tail of the
        mirrored list — always beyond the persisted prefix, so earlier
        ``persisted`` records never referenced these entries."""
        if not removed:
            return
        journaled = self._mds_journaled.get(mds.name, [])
        pending = list(removed)
        idx = len(journaled) - 1
        while pending and idx >= 0:
            ev = journaled[idx]
            cand = pending[-1]
            if (
                ev.op == cand.op
                and ev.path == cand.path
                and ev.target_path == cand.target_path
                and ev.ino == cand.ino
                and ev.client_id == cand.client_id
            ):
                journaled.pop(idx)
                pending.pop()
            idx -= 1
        if pending:
            raise RuntimeError(
                f"{mds.name}: {len(pending)} exported journal events have "
                "no mirror entry; persist accounting would desynchronize"
            )

    def record_migrate(
        self,
        subtree: str,
        src: str,
        dst: str,
        phase: str,
        epoch: int,
        **extra,
    ) -> None:
        """One phase transition of a live subtree migration.

        ``phase`` is ``begin`` (source froze the subtree), ``commit``
        (authority switched to the destination) or ``abort`` (the
        handoff unwound; the source keeps authority).
        """
        detail = {"phase": phase, "src": src, "dst": dst, "epoch": epoch}
        for k, v in sorted(extra.items()):
            detail[k] = v
        self._emit(kind="migrate", actor=src, path=subtree, detail=detail)

    def record_mds_recover(
        self, mds: "MetadataServer", events: Sequence[JournalEvent]
    ) -> None:
        # Replayed events are numbered by journal position (matching the
        # global-persist records, which index the same log) — MDS-side
        # JournalEvents carry no client-journal seq of their own.
        idx = 0
        for ev in events:
            if not ev.is_mutation:
                continue
            idx += 1
            self._emit(
                kind="recovered", actor=mds.name,
                op=EventType(ev.op).name.lower(), path=ev.path,
                ino=ev.ino or None, seq=idx, client=ev.client_id,
                target=ev.target_path,
            )
        self._emit(
            kind="recover", actor=mds.name,
            detail={"mode": "journal-replay", "restored": len(events)},
        )

    # ------------------------------------------------------------------
    # crash / recovery markers (repro.faults drives these paths)
    # ------------------------------------------------------------------
    def record_crash(self, actor: str, **detail) -> None:
        self._emit(kind="crash", actor=actor,
                   detail={k: v for k, v in sorted(detail.items())})
        # An MDS crash drops its open (undispatched) segment: trim the
        # same events off the journal mirror's tail so a later segment
        # land never claims the lost events were persisted.  In-flight
        # segments sit earlier in the mirror and are allowed to land.
        lost = detail.get("journal_events_lost", 0)
        journaled = self._mds_journaled.get(actor)
        if journaled is not None and lost:
            del journaled[max(0, len(journaled) - lost):]

    def record_client_recover(
        self, dclient: "DecoupledClient", mode: str
    ) -> None:
        """A decoupled client finished recovery: its journal now holds
        exactly what the recovery source gave back."""
        for ev in dclient.journal.events:
            self._emit(
                kind="recovered", actor=dclient.name,
                op=EventType(ev.op).name.lower(), path=ev.path,
                ino=ev.ino or None, seq=ev.seq, client=dclient.client_id,
                target=ev.target_path,
            )
        self._emit(
            kind="recover", actor=dclient.name,
            detail={"mode": mode, "restored": len(dclient.journal)},
        )

    def record_recover(self, actor: str, **detail) -> None:
        self._emit(kind="recover", actor=actor,
                   detail={k: v for k, v in sorted(detail.items())})

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def record_local_persist(self, dclient: "DecoupledClient") -> None:
        """Local Persist landed: journal events up to the current tail
        are now safe on the client's own disk."""
        self._record_journal_persist(dclient, scope="local")

    def _record_journal_persist(self, dclient, scope: str) -> None:
        mark = self._persist_marks.get((dclient.name, scope), 0)
        for ev in dclient.journal.events:
            if ev.seq <= mark:
                continue
            self._emit(
                kind="persisted", actor=dclient.name, scope=scope,
                op=EventType(ev.op).name.lower(), path=ev.path,
                ino=ev.ino or None, seq=ev.seq, client=dclient.client_id,
            )
            mark = ev.seq
        self._persist_marks[(dclient.name, scope)] = mark

    def record_persist_fault(
        self, dclient: "DecoupledClient", scope: str, mode: str, scan
    ) -> None:
        """A persist landed damaged: the on-media image verifies only up
        to ``scan``'s valid prefix.  Caps the just-recorded persisted
        claims and rolls the scope's watermark back so a later *clean*
        persist re-claims the updates the damaged image lost."""
        events = scan.events
        valid_seq = events[-1].seq if events else 0
        self._emit(
            kind="persist_fault", actor=dclient.name, scope=scope,
            client=dclient.client_id,
            detail={
                "damage": scan.damage,
                "mode": mode,
                "valid_events": len(events),
                "valid_seq": valid_seq,
            },
        )
        mark = self._persist_marks.get((dclient.name, scope), 0)
        if valid_seq < mark:
            self._persist_marks[(dclient.name, scope)] = valid_seq

    # -- object layer ------------------------------------------------------
    def _on_object_mutate(self, obj: RadosObject, action: str, nbytes: int) -> None:
        """Bytes landed in (an OSD's copy of) an object.

        Journal objects are interpreted into per-update global-persist
        records; everything else is ignored (data-pool traffic carries
        no metadata semantics).  Replica writes re-fire the hook; the
        per-owner watermark keeps records unique.
        """
        match = _JOURNAL_OBJECT.match(obj.name)
        if match is None:
            return
        owner = match.group("owner")
        for dclient in self.cluster._dclients:
            if dclient.name == owner:
                self._record_journal_persist(dclient, scope="global")
                return
        for mds in self.cluster.mds_list:
            if mds.name == owner:
                self._record_mds_global_persist(mds)
                return

    def _record_mds_global_persist(self, mds: "MetadataServer") -> None:
        """A segment of the MDS journal landed in the object store: the
        journaled prefix minus the still-open segment is now durable."""
        journaled = self._mds_journaled.get(mds.name, [])
        durable = len(journaled) - mds.journal.open_real_events
        done = self._mds_persisted.get(mds.name, 0)
        if durable <= done:
            return
        # Persisted records are numbered over *mutations* only, matching
        # the numbering journal-replay recovery uses — migration protocol
        # markers are journaled but carry no namespace update.
        mut_seq = self._mds_persisted_muts.get(mds.name, 0)
        for idx in range(done, durable):
            ev = journaled[idx]
            if not ev.is_mutation:
                continue
            mut_seq += 1
            self._emit(
                kind="persisted", actor=mds.name, scope="global",
                op=EventType(ev.op).name.lower(), path=ev.path,
                ino=ev.ino or None, seq=mut_seq, client=ev.client_id,
            )
        self._mds_persisted[mds.name] = durable
        self._mds_persisted_muts[mds.name] = mut_seq

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def record_snapshot(self, mds: "MetadataServer", subtree: str) -> None:
        """Record the authoritative namespace under ``subtree`` (sorted
        ``path:kind`` entries) as one snapshot event."""
        entries = []
        if mds.config.materialize:
            prefix = "/" + "/".join(p for p in subtree.split("/") if p)
            prefix = prefix.rstrip("/") + "/"
            for ino, frag in mds.mdstore.dirfrags.items():
                base = mds.mdstore.path_of(ino)
                if base is None:
                    continue
                for name, child in frag.entries.items():
                    path = base.rstrip("/") + "/" + name
                    if not path.startswith(prefix):
                        continue
                    kind = "dir" if mds.mdstore.inodes[child].is_dir else "file"
                    entries.append(f"{path}:{kind}")
        self._emit(
            kind="snapshot", actor=mds.name, path=subtree,
            detail={"entries": sorted(entries)},
        )
