"""The conformance checkers: history -> verdict.

:func:`check_history` decides whether one recorded history conforms to
a (consistency, durability) cell of the paper's Table I:

* **strong** — every acknowledged mutation was visible in the MDS's
  authoritative store no later than its acknowledgement;
* **weak** — the owner's updates stay invisible outside Volatile Apply
  merge windows, and every surviving update converges at merge time;
* **invisible** — the owner's updates never become globally visible;
* **none / local / global durability** — what recovery restores after a
  crash equals exactly the prefix the durability scope persisted;
* always — well-formedness (completions match invocations, time never
  runs backwards, inode allocations are unique, persists land in
  order) and a full replay of the visible history through the
  :class:`~repro.conformance.model.ReferenceModel`, compared against
  the driver's end-of-run snapshot.

Each distinct failure mode carries a distinct stable code (the
negative-path tests assert on them); verdicts serialize to canonical
JSON so golden runs are byte-comparable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.conformance.history import History, HistoryEvent, MUTATION_OPS
from repro.conformance.model import ReferenceModel

__all__ = ["Violation", "VIOLATION_CODES", "check_history", "verdict_json"]

#: Every code a checker can emit (documented contract; tests assert
#: distinctness of the negative-path injections against this set).
VIOLATION_CODES = (
    "complete-without-invoke",
    "time-reversed",
    "dup-ino-allocation",
    "persist-prefix-reorder",
    "strong-unseen-completion",
    "weak-early-visibility",
    "weak-not-converged",
    "invisible-cross-client-visibility",
    "durability-none-survivor",
    "durability-local-lost",
    "durability-local-phantom",
    "durability-global-lost",
    "durability-global-phantom",
    "corrupt-recovery-lost",
    "corrupt-recovery-overrun",
    "model-divergence",
    "strict-merge-unapplied",
    "strict-global-unflushed",
    "migrate-incomplete-handoff",
    "migrate-dual-authority",
)


@dataclass
class Violation:
    """One conformance failure, anchored to the history."""

    code: str
    message: str
    t: Optional[float] = None
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in VIOLATION_CODES:
            raise ValueError(f"unknown violation code {self.code!r}")

    def to_dict(self) -> Dict:
        out = {"code": self.code, "message": self.message}
        if self.t is not None:
            out["t"] = self.t
        if self.path is not None:
            out["path"] = self.path
        return out


def _mds_actors(history: History) -> set:
    """Actors that are metadata servers, inferred from the roles only an
    MDS plays in a history (merge windows, journal-replay recoveries,
    namespace snapshots, crashes that lose journal events)."""
    actors = set()
    for e in history:
        if e.kind in ("merge_begin", "merge_end", "snapshot"):
            actors.add(e.actor)
        elif e.kind == "recover" and e.detail.get("mode") == "journal-replay":
            actors.add(e.actor)
        elif e.kind == "crash" and "journal_events_lost" in e.detail:
            actors.add(e.actor)
        elif e.kind == "migrate":
            for role in ("src", "dst"):
                name = e.detail.get(role)
                if name:
                    actors.add(name)
    return actors


def _infer_owner(history: History) -> Optional[str]:
    for e in history:
        if e.kind == "invoke":
            return e.actor
    return None


# ---------------------------------------------------------------------------
# well-formedness
# ---------------------------------------------------------------------------


def _check_wellformed(history: History, out: List[Violation]) -> None:
    last_t = float("-inf")
    invokes: Dict[int, HistoryEvent] = {}
    alloc: Dict[int, str] = {}
    persist_marks: Dict[Tuple[str, str], int] = {}
    for e in history:
        if e.t < last_t:
            out.append(Violation(
                "time-reversed",
                f"{e.kind} by {e.actor} at t={e.t} after t={last_t}",
                t=e.t, path=e.path,
            ))
        last_t = max(last_t, e.t)
        if e.kind == "invoke" and e.op_id is not None:
            invokes[e.op_id] = e
        elif e.kind == "complete":
            inv = invokes.get(e.op_id)
            if inv is None:
                out.append(Violation(
                    "complete-without-invoke",
                    f"completion of op_id={e.op_id} by {e.actor} has no "
                    "matching invocation",
                    t=e.t,
                ))
            elif e.t < inv.t:
                out.append(Violation(
                    "time-reversed",
                    f"op_id={e.op_id} completed at t={e.t} before its "
                    f"invocation at t={inv.t}",
                    t=e.t, path=inv.path,
                ))
            if e.ok and e.ino:
                inv_op = inv.op if inv is not None else None
                inv_path = inv.path if inv is not None else None
                if inv_op in ("create", "mkdir") and inv_path is not None:
                    _note_alloc(alloc, e.ino, inv_path, e.t, out)
        elif e.kind == "visible" and e.op in ("create", "mkdir") and e.ino:
            _note_alloc(alloc, e.ino, e.path, e.t, out)
        elif e.kind == "persisted" and e.seq is not None:
            key = (e.actor, e.scope or "")
            mark = persist_marks.get(key, 0)
            if e.seq <= mark:
                out.append(Violation(
                    "persist-prefix-reorder",
                    f"{e.actor} persisted seq={e.seq} ({e.scope}) after "
                    f"seq={mark}; persisted prefixes must extend in order",
                    t=e.t, path=e.path,
                ))
            persist_marks[key] = max(mark, e.seq)
        elif e.kind == "persist_fault":
            # The damaged image supersedes the claims just recorded: a
            # later clean persist legitimately re-claims from the valid
            # prefix, so the in-order watermark rolls back with it.
            key = (e.actor, e.scope or "")
            valid_seq = e.detail.get("valid_seq", 0)
            if valid_seq < persist_marks.get(key, 0):
                persist_marks[key] = valid_seq


def _note_alloc(
    alloc: Dict[int, str], ino: int, path: str, t: float,
    out: List[Violation],
) -> None:
    seen = alloc.get(ino)
    if seen is not None and seen != path:
        out.append(Violation(
            "dup-ino-allocation",
            f"inode {ino} allocated for both {seen} and {path}",
            t=t, path=path,
        ))
    alloc.setdefault(ino, path)


# ---------------------------------------------------------------------------
# consistency
# ---------------------------------------------------------------------------


def _check_strong(
    history: History, owner: str, out: List[Violation]
) -> None:
    """Strong: an acknowledged mutation is already globally visible."""
    invokes = {
        e.op_id: e for e in history
        if e.kind == "invoke" and e.actor == owner and e.op_id is not None
    }
    visible = {}  # (op, path) -> earliest visible t
    for e in history:
        if e.kind == "visible":
            key = (e.op, e.path)
            if key not in visible:
                visible[key] = e.t
    for e in history:
        if e.kind != "complete" or e.actor != owner or not e.ok:
            continue
        inv = invokes.get(e.op_id)
        if inv is None or inv.op not in MUTATION_OPS:
            continue
        t_vis = visible.get((inv.op, inv.path))
        if t_vis is None or t_vis > e.t:
            out.append(Violation(
                "strong-unseen-completion",
                f"{inv.op} {inv.path} acknowledged at t={e.t} but not "
                "visible in the authoritative store by then",
                t=e.t, path=inv.path,
            ))


def _check_weak(
    history: History, owner: str, owner_client: Optional[int],
    out: List[Violation],
) -> None:
    """Weak: invisible until Volatile Apply, then fully merged."""
    depth = 0
    journal: Dict[int, str] = {}  # surviving journal: seq -> path
    pending_count: Optional[int] = None
    for e in history:
        if e.kind == "complete" and e.actor == owner and e.ok and e.seq:
            journal[e.seq] = e.path or ""
        elif e.kind == "crash" and e.actor == owner:
            journal.clear()
        elif e.kind == "recovered" and e.actor == owner and e.seq:
            journal[e.seq] = e.path or ""
        elif e.kind == "merge_begin":
            depth += 1
            if e.client == owner_client:
                # The shipped count may differ from the journal length:
                # conflict resolution rewrites the stream before it
                # ships.  Convergence is judged on what the MDS resolved.
                pending_count = e.detail.get("count")
        elif e.kind == "merge_end":
            depth = max(0, depth - 1)
            if e.client == owner_client:
                applied = e.detail.get("applied", 0)
                conflicts = e.detail.get("conflicts", 0)
                if pending_count is not None and \
                        applied + conflicts != pending_count:
                    out.append(Violation(
                        "weak-not-converged",
                        f"merge resolved {applied}+{conflicts} of "
                        f"{pending_count} shipped updates",
                        t=e.t, path=e.path,
                    ))
                journal.clear()
                pending_count = None
        elif e.kind == "visible" and e.client == owner_client and depth == 0:
            out.append(Violation(
                "weak-early-visibility",
                f"{e.op} {e.path} became visible outside any Volatile "
                "Apply merge window",
                t=e.t, path=e.path,
            ))
    if journal:
        out.append(Violation(
            "weak-not-converged",
            f"{len(journal)} surviving updates were never merged",
        ))


def _check_invisible(
    history: History, owner: str, owner_client: Optional[int],
    out: List[Violation],
) -> None:
    for e in history:
        if e.kind == "visible" and e.client == owner_client:
            out.append(Violation(
                "invisible-cross-client-visibility",
                f"{e.op} {e.path} by client {e.client} became globally "
                "visible under invisible consistency",
                t=e.t, path=e.path,
            ))
        elif e.kind == "merge_begin" and e.client == owner_client:
            out.append(Violation(
                "invisible-cross-client-visibility",
                f"client {e.client}'s journal was merged at the MDS "
                "under invisible consistency",
                t=e.t, path=e.path,
            ))


# ---------------------------------------------------------------------------
# durability
# ---------------------------------------------------------------------------


def _check_durability(
    history: History, durability: str, owner: str, mds_actors: set,
    out: List[Violation],
) -> None:
    """Recovery must restore exactly the persisted prefix.

    For the owner (decoupled) client the scope is the scenario's
    durability level; for an MDS the journal lives in the object store,
    so its replay is always held to the *global* prefix.

    A ``persist_fault`` record caps the scope's persisted set at the
    damaged image's checksummed-valid prefix: recovery from that image
    must restore exactly the prefix (``corrupt-recovery-lost`` /
    ``corrupt-recovery-overrun`` otherwise).  A later clean persist of
    anything beyond the valid prefix lifts the cap — the damaged image
    was overwritten by an intact one.
    """
    persisted: Dict[Tuple[str, str], Dict[int, str]] = {}
    recovered: Dict[str, List[HistoryEvent]] = {}
    crashed: Dict[str, Dict] = {}
    #: Active damage per (actor, scope): the fault's valid_seq cap.
    faulted: Dict[Tuple[str, str], int] = {}
    for e in history:
        if e.kind == "persisted" and e.seq is not None:
            key = (e.actor, e.scope or "")
            persisted.setdefault(key, {})[e.seq] = e.path or ""
            if key in faulted and e.seq > faulted[key]:
                del faulted[key]
        elif e.kind == "persist_fault":
            key = (e.actor, e.scope or "")
            valid_seq = e.detail.get("valid_seq", 0)
            faulted[key] = valid_seq
            claims = persisted.get(key)
            if claims is not None:
                for seq in [s for s in claims if s > valid_seq]:
                    del claims[seq]
        elif e.kind == "crash":
            crashed[e.actor] = e.detail
            recovered[e.actor] = []
            if e.detail.get("lose_disk"):
                persisted.pop((e.actor, "local"), None)
                faulted.pop((e.actor, "local"), None)
        elif e.kind == "recovered":
            recovered.setdefault(e.actor, []).append(e)
        elif e.kind == "recover":
            if e.actor not in crashed:
                # Plain restart (e.g. Nonvolatile Apply's MDS bounce):
                # nothing was lost, nothing to hold recovery to.
                recovered.pop(e.actor, None)
                continue
            got = {ev.seq: ev.path or "" for ev in recovered.get(e.actor, [])}
            if e.actor in mds_actors:
                _compare_recovery(
                    e, got, persisted.get((e.actor, "global"), {}),
                    "global", out,
                    corrupted=(e.actor, "global") in faulted,
                )
            elif e.actor == owner:
                if durability == "none":
                    if got:
                        out.append(Violation(
                            "durability-none-survivor",
                            f"{e.actor} recovered {len(got)} updates under "
                            "durability 'none' (nothing should survive)",
                            t=e.t,
                        ))
                else:
                    _compare_recovery(
                        e, got,
                        persisted.get((e.actor, durability), {}),
                        durability, out,
                        corrupted=(e.actor, durability) in faulted,
                    )
            crashed.pop(e.actor, None)
            recovered.pop(e.actor, None)


def _compare_recovery(
    marker: HistoryEvent, got: Dict[int, str], expected: Dict[int, str],
    scope: str, out: List[Violation],
    corrupted: bool = False,
) -> None:
    """Hold recovered updates to the persisted set.

    When the image recovery read was damaged (``corrupted``), the
    expected set is already capped at the checksummed-valid prefix and
    the mismatch codes change: losing part of the *valid* prefix is
    ``corrupt-recovery-lost``; restoring anything past it means recovery
    trusted bytes whose checksums cannot vouch for them
    (``corrupt-recovery-overrun``).
    """
    missing = sorted(set(expected) - set(got))
    extra = sorted(set(got) - set(expected))
    if missing:
        paths = ", ".join(expected[s] for s in missing[:3])
        if corrupted:
            out.append(Violation(
                "corrupt-recovery-lost",
                f"{marker.actor} recovery from a damaged {scope} image "
                f"lost {len(missing)} updates of the checksummed-valid "
                f"prefix (e.g. {paths})",
                t=marker.t,
            ))
        else:
            out.append(Violation(
                f"durability-{scope}-lost",
                f"{marker.actor} recovery lost {len(missing)} {scope}ly "
                f"persisted updates (e.g. {paths})",
                t=marker.t,
            ))
    if extra:
        paths = ", ".join(got[s] for s in extra[:3])
        if corrupted:
            out.append(Violation(
                "corrupt-recovery-overrun",
                f"{marker.actor} recovery from a damaged {scope} image "
                f"restored {len(extra)} updates past the checksummed-"
                f"valid prefix (e.g. {paths})",
                t=marker.t,
            ))
        else:
            out.append(Violation(
                f"durability-{scope}-phantom",
                f"{marker.actor} recovery produced {len(extra)} updates "
                f"never {scope}ly persisted (e.g. {paths})",
                t=marker.t,
            ))


# ---------------------------------------------------------------------------
# strict (opt-in) completeness checkers
# ---------------------------------------------------------------------------


def _check_strict_merge(
    history: History, owner: str, owner_client: Optional[int],
    out: List[Violation],
) -> None:
    """Strict merge convergence for weak rows (opt-in).

    Every acknowledged owner create/mkdir still in the journal when a
    merge window closes must have become *visible* with the owner's
    client id — the count bookkeeping in :func:`_check_weak` cannot see
    updates that conflict resolution silently dropped before shipping
    (a flipped ``core.merge`` priority passes it), so the strict tier
    holds the merge to the actual journal contents.  Crashes clear the
    tracked journal exactly as they clear the real one, so losing
    unpersisted updates to a crash stays legal.

    Scenario caveat (why this is opt-in): conflict resolution may
    legitimately satisfy an owner MKDIR by keeping an existing
    directory, without an owner-attributed visible event.  The model
    checker's bounded workloads avoid that shape; free-form conformance
    scenarios may not, so :func:`check_history` only runs this under
    ``strict=True``.

    Cascading loss is excused: when a crash legitimately eats a journal
    entry (durability permitting), later acknowledged ops *under* the
    lost path are orphans the merge cannot apply — they surface only
    because their parent was lawfully lost, so they are not silent
    drops.  The lost set shrinks again when recovery restores an entry.
    """
    invokes: Dict[int, Tuple[Optional[str], Optional[str]]] = {}
    journal: Dict[int, Tuple[Optional[str], Optional[str]]] = {}
    visible = set()
    lost_paths: set = set()

    def _orphaned(path: Optional[str]) -> bool:
        if path is None:
            return False
        return any(
            path.startswith(lost.rstrip("/") + "/") for lost in lost_paths
            if lost
        )

    for e in history:
        if e.kind == "invoke" and e.actor == owner and e.op_id is not None:
            invokes[e.op_id] = (e.op, e.path)
        elif e.kind == "complete" and e.actor == owner and e.ok and e.seq:
            op, path = invokes.get(e.op_id, (None, None))
            journal[e.seq] = (op, path if path is not None else e.path)
        elif e.kind == "crash" and e.actor == owner:
            lost_paths.update(
                journal[seq][1] for seq in sorted(journal)
                if journal[seq][1]
            )
            journal.clear()
        elif e.kind == "recovered" and e.actor == owner and e.seq:
            journal[e.seq] = (e.op, e.path)
            lost_paths.discard(e.path)
        elif e.kind == "visible" and e.client == owner_client:
            visible.add((e.op, e.path))
        elif e.kind == "merge_end" and e.client == owner_client:
            for seq in sorted(journal):
                op, path = journal[seq]
                if op not in ("create", "mkdir"):
                    continue
                if (op, path) in visible or _orphaned(path):
                    continue
                out.append(Violation(
                    "strict-merge-unapplied",
                    f"acknowledged {op} {path} (seq={seq}) survived to "
                    "the merge but never became visible with the "
                    "owner's client id",
                    t=e.t, path=path,
                ))
            journal.clear()


def _check_strict_persist(
    history: History, owner: str, mds_actors: set, out: List[Violation],
) -> None:
    """Strict global-persist completeness for strong+global (opt-in).

    Under RPCs + Stream, every acknowledged owner mutation is journaled
    at the MDS and the completion flush must push it to the object
    store: by the end of the history each acked create/mkdir path must
    carry an MDS ``persisted`` record with global scope.  The prefix
    comparison in :func:`_check_durability` cannot see a dropped flush
    (a shorter persisted prefix is still a valid prefix); this tier
    can.  An MDS crash legitimately sheds acked-but-undispatched
    updates (strong+global only guarantees what Stream flushed), so
    the acked set resets at an MDS crash like the journal it mirrors.
    """
    invokes: Dict[int, Tuple[Optional[str], Optional[str]]] = {}
    acked: List[Tuple[str, str, float]] = []
    persisted_paths = set()
    for e in history:
        if e.kind == "invoke" and e.actor == owner and e.op_id is not None:
            invokes[e.op_id] = (e.op, e.path)
        elif e.kind == "complete" and e.actor == owner and e.ok:
            op, path = invokes.get(e.op_id, (None, None))
            if op in ("create", "mkdir") and path is not None:
                acked.append((op, path, e.t))
        elif e.kind == "crash" and e.actor in mds_actors:
            acked.clear()
        elif e.kind == "persisted" and e.actor in mds_actors and \
                (e.scope or "") == "global":
            persisted_paths.add(e.path or "")
    for op, path, t in acked:
        if path not in persisted_paths:
            out.append(Violation(
                "strict-global-unflushed",
                f"acknowledged {op} {path} never reached the object "
                "store (no global persisted record by any MDS)",
                t=t, path=path,
            ))


# ---------------------------------------------------------------------------
# migrations
# ---------------------------------------------------------------------------


def _covering_subtree(path: Optional[str], authority: Dict[str, str]):
    """The most specific migrated subtree covering ``path``, if any."""
    if not path:
        return None
    best = None
    for sub in authority:
        if path == sub or path.startswith(sub.rstrip("/") + "/"):
            if best is None or len(sub) > len(best):
                best = sub
    return best


def _foreign_to(path: Optional[str], actor: str,
                authority: Dict[str, str]) -> bool:
    """Whether ``path`` lies in a migrated subtree owned by another
    actor (``actor``'s copy of it is stale and unobservable)."""
    sub = _covering_subtree(path, authority)
    return sub is not None and authority[sub] != actor


def _track_authority(e: HistoryEvent, authority: Dict[str, str],
                     pending: Dict[str, HistoryEvent]) -> None:
    """Advance the subtree->authority map through one migrate record."""
    phase = e.detail.get("phase")
    if phase == "begin":
        # Before its first migration the subtree's authority is the
        # migration's source.
        authority.setdefault(e.path, e.detail.get("src"))
        pending[e.path] = e
    elif phase == "commit":
        pending.pop(e.path, None)
        authority[e.path] = e.detail.get("dst")
    elif phase == "abort":
        pending.pop(e.path, None)


def _check_migrations(
    history: History, mds_actors: set, out: List[Violation]
) -> None:
    """Exactly-one-authority over live subtree migrations.

    Every ``begin`` must be closed by a ``commit`` or an ``abort``
    (``migrate-incomplete-handoff`` — e.g. a dropped IMPORT_ACK leaves
    the handoff dangling), and once a migration commits, only the new
    authority may make updates under the subtree visible
    (``migrate-dual-authority``).
    """
    authority: Dict[str, str] = {}
    pending: Dict[str, HistoryEvent] = {}
    for e in history:
        if e.kind == "migrate":
            _track_authority(e, authority, pending)
        elif e.kind == "visible" and authority and e.actor in mds_actors:
            sub = _covering_subtree(e.path, authority)
            if sub is not None and authority[sub] != e.actor:
                out.append(Violation(
                    "migrate-dual-authority",
                    f"{e.actor} made {e.op} {e.path} visible but "
                    f"{authority[sub]} holds the authority for {sub}",
                    t=e.t, path=e.path,
                ))
    for sub in sorted(pending):
        e = pending[sub]
        out.append(Violation(
            "migrate-incomplete-handoff",
            f"migration of {sub} from {e.detail.get('src')} to "
            f"{e.detail.get('dst')} began at t={e.t} but never committed "
            "or aborted",
            t=e.t, path=sub,
        ))


# ---------------------------------------------------------------------------
# model replay
# ---------------------------------------------------------------------------


def _commits_next(history: History, idx: int, sub: str) -> bool:
    """Whether ``sub``'s in-flight migration goes on to commit — i.e.
    the next migrate record for ``sub`` after position ``idx`` is a
    commit.  Used at a mid-handoff source crash: a committing handoff
    means the subtree's state had already moved to the destination."""
    for e in history.events[idx + 1:]:
        if e.kind == "migrate" and e.path == sub:
            return e.detail.get("phase") == "commit"
    return False


def _carry_subtrees(old: ReferenceModel, subs: List[str]) -> ReferenceModel:
    """A fresh model seeded with ``old``'s entries under ``subs`` (the
    migrated subtrees an MDS crash did *not* wipe, because their
    authority — and their state — lives on another rank)."""
    fresh = ReferenceModel()
    for sub in sorted(subs):
        prefix = sub.rstrip("/") + "/"
        for path in sorted(old.nodes):
            if path != sub and not path.startswith(prefix):
                continue
            parent = path.rsplit("/", 1)[0] or "/"
            if parent not in fresh.nodes:
                fresh.ensure_dirs(parent)
            node = old.nodes[path]
            fresh.nodes[path] = node
            if node.ino:
                fresh.used_inos.add(node.ino)
    return fresh


def _check_model(
    history: History, subtree: str, mds_actors: set, out: List[Violation]
) -> None:
    """Replay the visible history through the reference model and hold
    the end-of-run snapshot to the model's namespace.

    Histories with ``migrate`` records get authority-aware crash
    semantics: a crash wipes only the state the crashed rank was
    authoritative for (migrated-away subtrees survive on their new
    rank), and journal-replay recovery applies only the updates the
    recovering rank still owns — its copy of a migrated-away subtree is
    stale and unobservable behind the redirect.  Histories without
    migrate records replay exactly as before.
    """
    model = ReferenceModel()
    # The subtree root is usually admin-created (Cudele._ensure_path,
    # which is invisible to the history); seed it unless the history
    # itself records its mkdir.
    if not any(
        e.kind == "visible" and e.op == "mkdir" and e.path == subtree
        for e in history
    ):
        model.ensure_dirs(subtree)
    migrated = any(e.kind == "migrate" for e in history)
    authority: Dict[str, str] = {}
    pending: Dict[str, HistoryEvent] = {}
    if migrated:
        # Seed each migrated subtree's pre-handoff owner up front, so a
        # crash of some *other* rank before the begin record does not
        # wipe the subtree from the model.
        for e in history:
            if e.kind == "migrate":
                authority.setdefault(e.path, e.detail.get("src"))
    snapshot: Optional[HistoryEvent] = None
    for i, e in enumerate(history):
        if e.kind == "migrate":
            _track_authority(e, authority, pending)
        elif e.kind == "visible":
            ok, code = model.apply(
                e.op, e.path, ino=e.ino or 0, target=e.target
            )
            if not ok:
                out.append(Violation(
                    "model-divergence",
                    f"authoritative store accepted {e.op} {e.path} which "
                    f"the reference model rejects ({code})",
                    t=e.t, path=e.path,
                ))
        elif e.kind == "crash" and e.actor in mds_actors:
            # The MDS's in-memory store died; the model mirrors it —
            # except for migrated subtrees whose authority (and state)
            # lives on a rank that did not crash.
            if migrated and authority:
                preserved = {
                    sub for sub, owner in authority.items()
                    if owner != e.actor
                }
                # Mid-handoff crash of the source rank: if the handoff
                # goes on to commit, the subtree's state had already
                # been handed to the destination and survives.
                for sub in sorted(pending):
                    if (authority.get(sub) == e.actor
                            and _commits_next(history, i, sub)):
                        preserved.add(sub)
                model = _carry_subtrees(model, sorted(preserved))
            else:
                model = ReferenceModel()
        elif e.kind == "recovered" and e.actor in mds_actors:
            # Journal replay runs in the tool's skip-errors recovery
            # mode; the model replays under the same rule.  A rank's
            # replayed copy of a subtree that migrated away is stale
            # and unobservable (requests redirect) — skip it.
            if migrated and _foreign_to(e.path, e.actor, authority):
                continue
            model.apply(e.op, e.path, ino=e.ino or 0, target=e.target)
        elif e.kind == "snapshot":
            snapshot = e
    if snapshot is not None:
        want = sorted(snapshot.detail.get("entries", []))
        have = sorted(f"{p}:{k}" for p, k in model.paths_under(subtree))
        if want != have:
            missing = sorted(set(have) - set(want))[:3]
            extra = sorted(set(want) - set(have))[:3]
            out.append(Violation(
                "model-divergence",
                "final namespace differs from the model replay "
                f"(model-only: {missing}, store-only: {extra}, "
                f"sizes {len(have)} vs {len(want)})",
                t=snapshot.t, path=snapshot.path,
            ))


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def check_history(
    history: History,
    consistency: str,
    durability: str,
    subtree: str = "/",
    owner: Optional[str] = None,
    strict: bool = False,
) -> Dict:
    """Check one history against a semantics cell; returns a verdict.

    The verdict is a plain JSON-able dict: the scenario coordinates,
    event count, the violation list (empty means conformant) and an
    ``ok`` flag.

    ``strict=True`` adds the completeness tier used by the model
    checker (:func:`_check_strict_merge` for weak rows,
    :func:`_check_strict_persist` for strong+global) and marks the
    verdict with ``"strict": true``.  Default verdicts are untouched so
    recorded goldens stay byte-identical.
    """
    if consistency not in ("invisible", "weak", "strong"):
        raise ValueError(f"unknown consistency {consistency!r}")
    if durability not in ("none", "local", "global"):
        raise ValueError(f"unknown durability {durability!r}")
    owner = owner or _infer_owner(history)
    owner_client = None
    for e in history:
        if e.kind == "invoke" and e.actor == owner:
            owner_client = e.client
            break
    mds_actors = _mds_actors(history)

    violations: List[Violation] = []
    _check_wellformed(history, violations)
    if owner is not None:
        if consistency == "strong":
            _check_strong(history, owner, violations)
        elif consistency == "weak":
            _check_weak(history, owner, owner_client, violations)
        else:
            _check_invisible(history, owner, owner_client, violations)
        _check_durability(history, durability, owner, mds_actors, violations)
        if strict:
            if consistency == "weak":
                _check_strict_merge(history, owner, owner_client, violations)
            if (consistency, durability) == ("strong", "global"):
                _check_strict_persist(history, owner, mds_actors, violations)
    _check_migrations(history, mds_actors, violations)
    _check_model(history, subtree, mds_actors, violations)

    verdict = {
        "consistency": consistency,
        "durability": durability,
        "subtree": subtree,
        "owner": owner,
        "events": len(history),
        "ok": not violations,
        "violations": [v.to_dict() for v in violations],
    }
    if strict:
        verdict["strict"] = True
    return verdict


def verdict_json(verdict: Dict) -> str:
    """Canonical (byte-comparable) JSON form of a verdict."""
    return json.dumps(verdict, sort_keys=True, indent=2) + "\n"
