"""Exhaustive small-scope model checker for the semantics spectrum.

Small-scope hypothesis, applied to Table I: most composition bugs in
the consistency/durability mechanisms show up already with two clients,
a handful of operations and one subtree — *if* every scheduler
interleaving and every crash point is actually tried.  This module
tries them all:

* the workload is bounded (one decoupled-or-RPC **owner** and one RPC
  **interferer**, ``depth`` owner ops from create/mkdir under one
  subtree, fixed interferer creates — including a same-path conflict
  that exercises merge resolution on weak rows);
* the scheduler is the engine's controlled ready-set hook driven by a
  :class:`~repro.analysis.schedule.ScheduleController`: a run is a
  *schedule* (tuple of choice indices), the DFS extends every decision
  point of every run until the schedule space (not just one lucky seq
  order) is covered;
* each persist-relevant step gets a crash branch: decoupled rows crash
  and recover the owner after each op ``k`` (persist → crash →
  recover, ``lose_disk`` under global durability), strong+global adds
  the MDS journal-replay drill;
* every explored history is judged by the conformance checkers with
  ``strict=True`` (the completeness tier that catches silently-dropped
  merges and flushes), and canonically fingerprinted so distinct
  schedules reaching the same final state dedup.

Reduction: a DPOR-lite sleep-set approximation.  At each decision the
controller records per-alternative metadata (client tag, declared op
target, RPC flag, vector-clock stamp from the shared
:mod:`repro.analysis.causality` core); an alternative that provably
commutes with everything scheduled before it is pruned
(:meth:`~repro.analysis.schedule.Decision.prunable`).  ``--no-reduction``
disables it; the test suite holds the reduced and unreduced runs to the
same fingerprint set.

Mutation mode seeds a known bug and demands the checker catch it:
``merge-priority-flip`` makes conflict resolution prefer existing
entries (acknowledged owner updates silently vanish at merge time) and
``drop-journal-flush`` turns the MDS journal flush into a no-op
(acknowledged strong+global updates never reach the object store).
Both must produce a shrunk minimal counterexample.

CLI::

    python -m repro.analysis model --cell weak,local --depth 4 --budget 200
"""

from __future__ import annotations

import contextlib
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.causality import CausalityTracker
from repro.analysis.schedule import Decision, ScheduleController
from repro.cluster import Cluster
from repro.conformance.checkers import check_history
from repro.conformance.driver import CELLS, SEGMENT_EVENTS, SUBTREE
from repro.conformance.recorder import HistoryRecorder
from repro.core.mechanisms import MechanismContext, run_mechanism
from repro.core.namespace_api import Cudele
from repro.core.policy import SubtreePolicy
from repro.mds.server import MDSConfig
from repro.rados.striper import Striper

__all__ = [
    "MUTATIONS", "Mutation", "RunResult",
    "run_schedule", "explore_cell", "explore_matrix",
    "state_fingerprint", "model_report_json",
]

#: Owner op scripts, truncated to ``depth``.  ``/job/x`` deliberately
#: collides with an interferer create on decoupled rows so merge-time
#: conflict resolution is always on the explored path.
_OWNER_DECOUPLED: Tuple[Tuple[str, str], ...] = (
    ("create", SUBTREE + "/a0"),
    ("create", SUBTREE + "/x"),
    ("mkdir", SUBTREE + "/d0"),
    ("create", SUBTREE + "/d0/b0"),
    ("create", SUBTREE + "/a1"),
    ("mkdir", SUBTREE + "/d1"),
)
_OWNER_STRONG: Tuple[Tuple[str, str], ...] = (
    ("create", SUBTREE + "/s0"),
    ("mkdir", SUBTREE + "/sd"),
    ("create", SUBTREE + "/sd/s1"),
    ("create", SUBTREE + "/s2"),
    ("create", SUBTREE + "/s3"),
    ("mkdir", SUBTREE + "/sd2"),
)
_INTF_DECOUPLED = (SUBTREE + "/x", SUBTREE + "/i0", SUBTREE + "/i1")
#: Strong rows keep the interferer disjoint: both clients go through
#: RPCs, so a same-path race is just a benign EEXIST.
_INTF_STRONG = (SUBTREE + "/i0", SUBTREE + "/i1", SUBTREE + "/i2")

MAX_DEPTH = len(_OWNER_DECOUPLED)


# ---------------------------------------------------------------------------
# seeded mutations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Mutation:
    """One seedable bug the model checker must be able to catch."""

    name: str
    description: str
    #: The cell whose drill demonstrates the catch fastest.
    drill_cell: Tuple[str, str]
    #: Install a module-level patch; returns the undo callable.
    patch_module: Optional[Callable[[], Callable[[], None]]] = None
    #: Per-run hook applied to each freshly built cluster.
    arm: Optional[Callable[[Any], None]] = None

    @contextlib.contextmanager
    def active(self):
        undo = self.patch_module() if self.patch_module is not None else None
        try:
            yield self
        finally:
            if undo is not None:
                undo()


def _patch_merge_priority_flip() -> Callable[[], None]:
    import repro.core.merge as merge_mod

    orig = merge_mod.resolve_conflicts

    def flipped(mdstore, events, priority="decoupled"):
        return orig(mdstore, events, "existing")

    merge_mod.resolve_conflicts = flipped

    def undo():
        merge_mod.resolve_conflicts = orig

    return undo


def _noop_flush():
    return iter(())


def _arm_drop_journal_flush(cluster) -> None:
    for mds in cluster.mds_list:
        mds.journal.flush = _noop_flush


MUTATIONS: Dict[str, Mutation] = {
    m.name: m
    for m in (
        Mutation(
            name="merge-priority-flip",
            description=(
                "conflict resolution prefers existing entries, silently "
                "dropping acknowledged journal updates at merge time"
            ),
            drill_cell=("weak", "local"),
            patch_module=_patch_merge_priority_flip,
        ),
        Mutation(
            name="drop-journal-flush",
            description=(
                "the MDS journal flush becomes a no-op: acknowledged "
                "strong+global updates never reach the object store"
            ),
            drill_cell=("strong", "global"),
            arm=_arm_drop_journal_flush,
        ),
    )
}


# ---------------------------------------------------------------------------
# one controlled run
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    """Everything the explorer needs from one controlled run."""

    verdict: Dict
    fingerprint: str
    decisions: List[Decision]
    taken: List[int]
    history_text: str

    @property
    def ok(self) -> bool:
        return bool(self.verdict["ok"])


def variant_name(crash: Optional[Tuple]) -> str:
    if crash is None:
        return "no-crash"
    if crash[0] == "owner":
        return f"owner-crash@op{crash[1]}"
    return "mds-journal-replay"


def crash_variants(
    consistency: str, durability: str, depth: int
) -> List[Optional[Tuple]]:
    """The crash branches explored for one cell.

    Decoupled rows branch after every owner op (each is a persist-
    relevant step: persist → crash → recover runs inline there);
    strong rows have no decoupled journal to lose mid-run, but
    strong+global gets the post-finalize MDS journal-replay drill.
    """
    if consistency in ("invisible", "weak"):
        return [None] + [("owner", k) for k in range(1, depth + 1)]
    variants: List[Optional[Tuple]] = [None]
    if durability == "global":
        variants.append(("mds",))
    return variants


def state_fingerprint(history) -> str:
    """Canonical hash of the *final state* a history reached.

    Built only from order-insensitive, time-free facts — the closing
    namespace snapshot, which updates became visible/persisted/acked —
    so two schedules that merely permute same-instant ties fingerprint
    equal iff they converged.  (Timestamps are deliberately excluded:
    MDS queueing shifts them across schedules without changing state.)
    """
    snapshot: List[str] = []
    persisted: List[Tuple] = []
    visible: List[Tuple] = []
    acked: List[Tuple] = []
    for e in history:
        if e.kind == "snapshot":
            snapshot = list(e.detail.get("entries", []))
        elif e.kind == "persisted":
            persisted.append(
                (e.actor, e.scope or "", e.seq or 0, e.path or "")
            )
        elif e.kind == "visible":
            visible.append(
                (e.op or "", e.path or "",
                 -1 if e.client is None else e.client)
            )
        elif e.kind == "complete":
            acked.append((e.actor, e.op or "", e.path or "", bool(e.ok)))
    payload = {
        "snapshot": snapshot,
        "persisted": sorted(persisted),
        "visible": sorted(visible),
        "acked": sorted(acked),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _owner_crash_recover(cluster, ns, worker, durability: str):
    """Persist what the cell allows, crash the owner, recover it."""
    if durability != "none":
        mech = "local_persist" if durability == "local" else "global_persist"
        yield from run_mechanism(
            mech, MechanismContext(cluster, SUBTREE, ns.dclient)
        )
    worker.crash(lose_disk=(durability == "global"))
    if durability == "global":
        striper = Striper(
            cluster.objstore, "metadata", f"{worker.name}.journal"
        )
        yield from worker.recover_global(striper)
    else:
        yield from worker.recover_local()


def run_schedule(
    consistency: str,
    durability: str,
    schedule: Sequence[int] = (),
    crash: Optional[Tuple] = None,
    depth: int = 4,
    mutation: Optional[Mutation] = None,
    seed: int = 0,
    expose: str = "tagged",
) -> RunResult:
    """Run the bounded workload once under one schedule + crash branch.

    Deterministic: the same arguments always produce the same history
    (the engine is seeded and simulated-time-only; the only freedom is
    the schedule, and the controller replays it exactly).  The
    controlled scheduler is attached only around the concurrent
    workload phase — setup and the finalize tail are single-threaded,
    so controlling them would only inflate the decision space.
    """
    depth = max(1, min(depth, MAX_DEPTH))
    cluster = Cluster(
        seed=seed, mds_config=MDSConfig(segment_events=SEGMENT_EVENTS)
    )
    if mutation is not None and mutation.arm is not None:
        mutation.arm(cluster)
    recorder = HistoryRecorder.attach(cluster)
    tracker = CausalityTracker(cluster.engine).attach()
    controller: Optional[ScheduleController] = None
    try:
        cudele = Cudele(cluster)
        boot = cluster.new_client()
        cluster.run(boot.mkdir(SUBTREE))
        policy = SubtreePolicy.from_semantics(
            consistency, durability, allocated_inodes=2048
        )
        ns = cluster.run(cudele.decouple(SUBTREE, policy))
        worker = ns.dclient if ns.dclient is not None else boot
        owner = worker.name
        decoupled = ns.dclient is not None
        intf = cluster.new_client()

        owner_ops = (
            _OWNER_DECOUPLED if decoupled else _OWNER_STRONG
        )[:depth]
        intf_paths = _INTF_DECOUPLED if decoupled else _INTF_STRONG

        controller = ScheduleController(
            cluster.engine, schedule, tracker=tracker, expose=expose
        ).attach()

        def owner_prog():
            for k, (op, path) in enumerate(owner_ops, start=1):
                controller.set_target("owner", path, rpc=not decoupled)
                if op == "create":
                    if decoupled:
                        dirname, name = path.rsplit("/", 1)
                        yield from worker.create_many(dirname, [name])
                    else:
                        yield from worker.create(path)
                else:
                    yield from worker.mkdir(path)
                if crash is not None and crash[0] == "owner" \
                        and crash[1] == k:
                    controller.set_target("owner", None)
                    yield from _owner_crash_recover(
                        cluster, ns, worker, durability
                    )
            controller.clear_target("owner")

        def intf_prog():
            for path in intf_paths:
                controller.set_target("intf", path, rpc=True)
                yield from intf.create(path)
            controller.clear_target("intf")

        p_owner = cluster.engine.process(owner_prog(), name="model-owner")
        controller.tag_process(p_owner, "owner")
        p_intf = cluster.engine.process(intf_prog(), name="model-intf")
        controller.tag_process(p_intf, "intf")

        def join():
            yield cluster.engine.all_of([p_owner, p_intf])

        cluster.run(join())
        decisions = controller.decisions
        taken = list(controller.taken)
        controller.detach()
        controller = None

        if crash is None or crash[0] != "owner":
            # The crash branches already persisted inline before the
            # crash; straight-line runs persist here like the driver.
            if decoupled and durability != "none":
                mech = ("local_persist" if durability == "local"
                        else "global_persist")
                cluster.run(run_mechanism(
                    mech, MechanismContext(cluster, SUBTREE, ns.dclient)
                ))
        cluster.run(ns.finalize())
        if not decoupled and durability == "global":
            # Stream's completion point: strong+global is only
            # guaranteed once the MDS journal is safe in the object
            # store, and with small bounded workloads nothing fills a
            # segment mid-run — flush explicitly before judging.
            cluster.run(run_mechanism(
                "stream", MechanismContext(cluster, SUBTREE, None)
            ))
        if crash is not None and crash[0] == "mds":
            from repro.conformance.driver import _crash_recover

            _crash_recover(cluster, cluster.mds.name, mode="local")
        recorder.record_snapshot(cluster.mds, SUBTREE)

        verdict = check_history(
            recorder.history, consistency, durability,
            subtree=SUBTREE, owner=owner, strict=True,
        )
        return RunResult(
            verdict=verdict,
            fingerprint=state_fingerprint(recorder.history),
            decisions=decisions,
            taken=taken,
            history_text=recorder.history.canonical(),
        )
    finally:
        if controller is not None:
            controller.detach()
        tracker.detach()
        recorder.detach()


# ---------------------------------------------------------------------------
# the explorer
# ---------------------------------------------------------------------------


def _shrink(
    consistency: str,
    durability: str,
    crash: Optional[Tuple],
    schedule: Tuple[int, ...],
    depth: int,
    mutation: Optional[Mutation],
) -> Tuple[Tuple[int, ...], RunResult, int]:
    """Minimize a violating schedule: shortest prefix, then delta-to-0.

    Returns ``(schedule, result, runs_spent)``.  Sound because each
    candidate is *re-run* and kept only if it still violates.
    """
    runs = 0

    def violates(cand: Tuple[int, ...]) -> Optional[RunResult]:
        nonlocal runs
        runs += 1
        res = run_schedule(
            consistency, durability, cand, crash, depth, mutation
        )
        return None if res.ok else res

    best_sched, best_res = schedule, None
    for n in range(len(schedule) + 1):
        res = violates(schedule[:n])
        if res is not None:
            best_sched, best_res = schedule[:n], res
            break
    if best_res is None:  # pragma: no cover - violation not replayable
        best_res = violates(schedule)
        return schedule, best_res, runs

    work = list(best_sched)
    changed = True
    while changed:
        changed = False
        for i, v in enumerate(work):
            if v == 0:
                continue
            trial = list(work)
            trial[i] = 0
            res = violates(tuple(trial))
            if res is not None:
                work, best_res, changed = trial, res, True
    while work and work[-1] == 0:
        work.pop()
    res = violates(tuple(work))
    if res is not None:
        best_res = res
    else:  # pragma: no cover - trailing zeros must be inert
        work = list(best_sched)
    return tuple(work), best_res, runs


def explore_cell(
    consistency: str,
    durability: str,
    depth: int = 4,
    budget: int = 400,
    mutation: Optional[Mutation] = None,
    reduction: bool = True,
) -> Dict:
    """DFS over the schedule space of one Table I cell.

    Every crash variant starts from the empty schedule (the default
    order) and each run's decision points spawn sibling schedules for
    every untaken alternative; ``budget`` caps total runs across
    variants.  Stops at the first violation, shrinks it, and reports
    the minimal counterexample.
    """
    depth = max(1, min(depth, MAX_DEPTH))
    variants = crash_variants(consistency, durability, depth)
    runs = 0
    pruned = 0
    fingerprints = set()
    counterexample: Optional[Dict] = None
    shrink_runs = 0
    exhausted = True
    explored_variants: List[str] = []

    with (mutation.active() if mutation is not None
          else contextlib.nullcontext()):
        for crash in variants:
            explored_variants.append(variant_name(crash))
            stack: List[Tuple[int, ...]] = [()]
            while stack:
                if runs >= budget:
                    exhausted = False
                    break
                sched = stack.pop()
                res = run_schedule(
                    consistency, durability, sched, crash, depth, mutation
                )
                runs += 1
                fingerprints.add(res.fingerprint)
                if not res.ok:
                    min_sched, min_res, shrink_runs = _shrink(
                        consistency, durability, crash, sched, depth,
                        mutation,
                    )
                    counterexample = {
                        "variant": variant_name(crash),
                        "schedule": list(min_sched),
                        "decisions": [
                            d.render() for d in min_res.decisions
                        ],
                        "violations": min_res.verdict["violations"],
                        "history": min_res.history_text,
                    }
                    exhausted = False
                    break
                for j in range(len(sched), len(res.decisions)):
                    d = res.decisions[j]
                    base = tuple(res.taken[:j])
                    for a in range(1, d.size):
                        if reduction and d.prunable(a):
                            pruned += 1
                            continue
                        stack.append(base + (a,))
            if counterexample is not None or runs >= budget:
                break

    return {
        "cell": f"{consistency}/{durability}",
        "consistency": consistency,
        "durability": durability,
        "depth": depth,
        "budget": budget,
        "reduction": reduction,
        "mutation": mutation.name if mutation is not None else None,
        "crash_variants": explored_variants,
        "runs": runs,
        "shrink_runs": shrink_runs,
        "distinct_states": len(fingerprints),
        "fingerprints": sorted(fingerprints),
        "pruned": pruned,
        "exhausted": exhausted,
        "ok": counterexample is None,
        "counterexample": counterexample,
    }


def explore_matrix(
    cells: Sequence[Tuple[str, str]] = CELLS,
    depth: int = 4,
    budget: int = 400,
    mutation: Optional[Mutation] = None,
    reduction: bool = True,
) -> Dict:
    """Explore every requested cell; ``ok`` means zero counterexamples.

    With a mutation, only its drill cell is explored unless ``cells``
    was narrowed explicitly — exhausting unrelated cells against a bug
    they cannot observe is wasted budget.
    """
    if mutation is not None and tuple(cells) == tuple(CELLS):
        cells = [mutation.drill_cell]
    reports = [
        explore_cell(c, d, depth=depth, budget=budget,
                     mutation=mutation, reduction=reduction)
        for (c, d) in cells
    ]
    return {
        "subtree": SUBTREE,
        "depth": depth,
        "budget": budget,
        "reduction": reduction,
        "mutation": mutation.name if mutation is not None else None,
        "ok": all(r["ok"] for r in reports),
        "cells": reports,
    }


def model_report_json(report: Dict) -> str:
    """Canonical JSON artifact text for a model-checking report."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
