"""Vector-clock happens-before over engine causality breadcrumbs.

One causality core shared by the race detector (:mod:`repro.analysis.races`)
and the model checker's commutativity reduction (:mod:`repro.analysis.model`):
a :class:`CausalityTracker` attached to an engine maintains a vector clock
per process and stamps every triggered event with the clock of whoever
triggered it, so "did A happen-before B, or could a different schedule
reorder them?" becomes a pointwise clock comparison instead of the old
name-chain walk (which could not express joins and missed transitive
edges through derived events).

Clock discipline
----------------
* Every :class:`~repro.sim.engine.Process` owns one component, assigned
  on first sight.
* ``Event.succeed``/``Event.fail`` are wrapped (class-level, attach/
  detach — same opt-in pattern as ``RadosObject.on_mutate``) to stamp
  the event with the *triggerer's clock at trigger time*.  Stamping at
  dispatch time instead would fold in whatever the triggerer did after
  calling ``succeed`` and hide real races.
* When an event resumes a process, the process clock becomes
  ``merge(own, event stamp)`` then ticks its own component.  The merge
  is applied eagerly from the engine trace hook for ordinary resumes
  and lazily (from ``Process.last_resumed_by``) for resume paths the
  hook cannot see: ``Interrupt`` delivery closures and already-processed
  events whose callback runs inside ``add_callback``.
* Triggers from host/callback context (``active_process is None``)
  inherit the stamp of the event currently being dispatched — this is
  how causality flows through derived events (``AllOf``/``AnyOf``,
  store wakeups) that succeed follow-on events from plain callbacks.

The relation is deliberately *under*-approximated where the breadcrumbs
run out (an unstamped pre-attach event contributes the empty clock):
missing edges can only make the race detector report a schedule-artifact
pair that is actually ordered, and can only make the model checker
explore an order it could have pruned — both sound directions.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.sim.engine import Engine, Event, Process

__all__ = ["VectorClock", "CausalityTracker"]


class VectorClock:
    """An immutable mapping ``pid -> counter`` with pointwise ordering."""

    __slots__ = ("_c", "_hash")

    def __init__(self, items: Any = ()):
        # Zero components are the implicit default everywhere (`get`
        # returns 0 for absent pids); storing them explicitly would
        # break value equality and the strict-precedence test.
        self._c: Dict[int, int] = {
            p: n for p, n in dict(items).items() if n
        }
        self._hash: Optional[int] = None

    def tick(self, pid: int) -> "VectorClock":
        """A copy with ``pid``'s component incremented."""
        c = dict(self._c)
        c[pid] = c.get(pid, 0) + 1
        return VectorClock(c)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """The pointwise maximum (least upper bound) of the two clocks."""
        if not other._c:
            return self
        if not self._c:
            return other
        c = dict(self._c)
        for pid, n in other._c.items():
            if c.get(pid, 0) < n:
                c[pid] = n
        return VectorClock(c)

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise ``self <= other`` (equality counts as ordered)."""
        for pid, n in self._c.items():
            if n > other._c.get(pid, 0):
                return False
        return True

    def precedes(self, other: "VectorClock") -> bool:
        """Strict happens-before: ``self <= other`` and ``self != other``."""
        return self.leq(other) and self._c != other._c

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither clock is pointwise below the other."""
        return not self.leq(other) and not other.leq(self)

    def get(self, pid: int) -> int:
        return self._c.get(pid, 0)

    def items(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self._c.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._c == other._c

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._c.items()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{p}:{n}" for p, n in self.items())
        return f"VectorClock({{{inner}}})"


EMPTY_CLOCK = VectorClock()


class CausalityTracker:
    """Opt-in engine instrumentation maintaining vector clocks.

    Exactly one tracker is attached process-wide at a time (the
    wrappers live on the :class:`Event` class, like the conformance
    recorder's ``RadosObject.on_mutate`` hook); attaching a new tracker
    automatically releases a stale one from a finished engine.  Events
    on other engines pass straight through the wrappers.
    """

    _attached: Optional["CausalityTracker"] = None

    def __init__(self, engine: Engine):
        self.engine = engine
        self._pids: Dict[Process, int] = {}
        self._proc_clocks: Dict[Process, VectorClock] = {}
        #: Event -> clock stamped at trigger time.  Keyed by the event
        #: object itself (identity hash); the strong reference also
        #: guarantees ids are never recycled mid-run.
        self._event_clocks: Dict[Event, VectorClock] = {}
        #: Per-process, the resume event whose stamp was last merged —
        #: lets the lazy path skip already-applied merges.
        self._merged_resume: Dict[Process, Optional[Event]] = {}
        self._current_event: Optional[Event] = None
        self._prev_trace = None
        self._orig_succeed = None
        self._orig_fail = None

    # -- attach / detach -------------------------------------------------
    def attach(self) -> "CausalityTracker":
        prev = CausalityTracker._attached
        if prev is self:
            return self
        if prev is not None:
            # A tracker from an earlier (finished) engine is still
            # holding the class-level wrappers; replace it rather than
            # fail, so short-lived detectors need no explicit lifecycle.
            prev.detach()
        CausalityTracker._attached = self
        # Recycled pooled timeouts would alias event stamps from earlier
        # instants; disable pooling outright (the trace hook below also
        # suppresses recycling, but pool_limit=0 survives hook chaining).
        self.engine.pool_limit = 0
        self.engine._timeout_pool.clear()
        self._prev_trace = self.engine.trace
        self.engine.trace = self._on_trace
        self._orig_succeed = Event.succeed
        self._orig_fail = Event.fail
        tracker = self
        orig_succeed = self._orig_succeed
        orig_fail = self._orig_fail

        def succeed(ev, value=None, delay=0.0):
            orig_succeed(ev, value, delay=delay)
            if ev.engine is tracker.engine:
                tracker._stamp(ev)
            return ev

        def fail(ev, exc, delay=0.0):
            orig_fail(ev, exc, delay=delay)
            if ev.engine is tracker.engine:
                tracker._stamp(ev)
            return ev

        Event.succeed = succeed
        Event.fail = fail
        return self

    def detach(self) -> None:
        if CausalityTracker._attached is not self:
            return
        CausalityTracker._attached = None
        Event.succeed = self._orig_succeed
        Event.fail = self._orig_fail
        self.engine.trace = self._prev_trace
        self._prev_trace = None

    # -- clocks ----------------------------------------------------------
    def pid_of(self, proc: Process) -> int:
        pid = self._pids.get(proc)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[proc] = pid
            self._proc_clocks[proc] = EMPTY_CLOCK.tick(pid)
            self._merged_resume[proc] = None
        return pid

    def clock_of(self, proc: Process) -> VectorClock:
        """The process's current clock, resume merges applied (no tick)."""
        self.pid_of(proc)
        ev = proc.last_resumed_by
        if ev is not None and ev is not self._merged_resume.get(proc):
            self._merged_resume[proc] = ev
            stamp = self._event_clocks.get(ev)
            clock = self._proc_clocks[proc]
            if stamp is not None:
                clock = clock.merge(stamp)
            self._proc_clocks[proc] = clock.tick(self._pids[proc])
        return self._proc_clocks[proc]

    def observe(self, proc: Process) -> VectorClock:
        """Advance and return the process clock for one observable access."""
        clock = self.clock_of(proc).tick(self._pids[proc])
        self._proc_clocks[proc] = clock
        return clock

    def event_clock(self, event: Event) -> Optional[VectorClock]:
        """The stamp recorded when ``event`` was triggered (or None)."""
        return self._event_clocks.get(event)

    # -- instrumentation internals --------------------------------------
    def _stamp(self, ev: Event) -> None:
        active = self.engine._active
        if active is not None:
            clock = self.clock_of(active)
        elif self._current_event is not None:
            # Host/callback context: causality flows through the event
            # being dispatched right now (derived events like AllOf
            # succeed from its callbacks).
            clock = self._event_clocks.get(self._current_event, EMPTY_CLOCK)
        else:
            clock = EMPTY_CLOCK
        self._event_clocks[ev] = clock

    def _on_trace(self, t: float, event: Event) -> None:
        self._current_event = event
        stamp = self._event_clocks.get(event)
        if stamp is not None:
            # Eagerly merge into every process this event will resume;
            # _deliver closures and immediate add_callback resumes are
            # caught lazily via last_resumed_by in clock_of().
            for cb in event.callbacks:
                proc = getattr(cb, "__self__", None)
                if not isinstance(proc, Process):
                    continue
                self.pid_of(proc)
                self._merged_resume[proc] = event
                self._proc_clocks[proc] = (
                    self._proc_clocks[proc].merge(stamp).tick(self._pids[proc])
                )
        if self._prev_trace is not None:
            self._prev_trace(t, event)
