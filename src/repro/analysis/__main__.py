"""Command-line entry: ``python -m repro.analysis``.

Usage::

    python -m repro.analysis [lint] [--rules a,b] [--stats] PATH...
    python -m repro.analysis check --composition "a+b||c" ...
    python -m repro.analysis check --policies policies.cudele ...
    python -m repro.analysis rules

``lint`` (the default when the first argument is a path) runs simlint
and exits 0 only when every finding is fixed or suppressed; ``check``
statically validates compositions and versioned policy sets; ``rules``
prints the rule catalog.  Exit codes: 0 clean, 1 findings/errors,
2 usage error.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.checker import (
    PolicySetError,
    check_plan,
    check_policy_set,
    parse_policy_set,
    policy_set_warnings,
)
from repro.analysis.rules import rule_catalog
from repro.analysis.simlint import lint_paths

USAGE = __doc__ or ""


def _lint(argv: List[str]) -> int:
    rules: Optional[List[str]] = None
    show_stats = False
    paths: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--rules":
            spec = next(it, None)
            if spec is None:
                print("--rules requires a comma-separated list", file=sys.stderr)
                return 2
            rules = [r.strip() for r in spec.split(",") if r.strip()]
        elif arg == "--stats":
            show_stats = True
        elif arg.startswith("-"):
            print(f"unknown lint option {arg!r}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if not paths:
        print("lint requires at least one file or directory", file=sys.stderr)
        return 2
    try:
        report = lint_paths(paths, rules=rules)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.render())
    if show_stats:
        for where, count in sorted(report.suppression_counts.items()):
            print(f"suppression {where}: waived {count} finding(s)")
    return 0 if report.ok else 1


def _check(argv: List[str]) -> int:
    compositions: List[str] = []
    policy_files: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--composition":
            value = next(it, None)
            if value is None:
                print("--composition requires an expression", file=sys.stderr)
                return 2
            compositions.append(value)
        elif arg == "--policies":
            value = next(it, None)
            if value is None:
                print("--policies requires a file path", file=sys.stderr)
                return 2
            policy_files.append(value)
        else:
            print(f"unknown check argument {arg!r}", file=sys.stderr)
            return 2
    if not compositions and not policy_files:
        print("check requires --composition and/or --policies", file=sys.stderr)
        return 2
    failed = False
    for text in compositions:
        errors = check_plan(text)
        if errors:
            failed = True
            for err in errors:
                print(f"composition {text!r}: {err.render()}")
        else:
            print(f"composition {text!r}: ok")
    for path in policy_files:
        try:
            source = Path(path).read_text()
        except OSError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            ps = parse_policy_set(source)
        except PolicySetError as exc:
            failed = True
            for err in exc.errors:
                print(f"{path}: {err.render()}")
            continue
        errors = check_policy_set(ps)
        for err in errors:
            print(f"{path}: {err.render()}")
        for warning in policy_set_warnings(ps):
            print(f"{path}: warning: {warning}")
        if errors:
            failed = True
        else:
            print(f"{path}: ok ({len(ps.subtrees)} subtree(s), "
                  f"version {ps.version})")
    return 1 if failed else 0


def _rules() -> int:
    for rule_id, summary in rule_catalog().items():
        print(f"{rule_id}: {summary}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(USAGE.strip())
        return 0 if argv else 2
    cmd, rest = argv[0], argv[1:]
    if cmd == "lint":
        return _lint(rest)
    if cmd == "check":
        return _check(rest)
    if cmd == "rules":
        return _rules()
    # Default: treat every argument as a lint target/option.
    return _lint(argv)


if __name__ == "__main__":
    raise SystemExit(main())
