"""Command-line entry: ``python -m repro.analysis``.

Usage::

    python -m repro.analysis [lint] [--rules a,b] [--stats] \\
        [--json | --format github] PATH...
    python -m repro.analysis check --composition "a+b||c" ...
    python -m repro.analysis check --policies policies.cudele ...
    python -m repro.analysis model [--cell C,D]... [--depth N] \\
        [--budget M] [--mutation NAME] [--no-reduction] \\
        [--out FILE] [--json]
    python -m repro.analysis rules

``lint`` (the default when the first argument is a path) runs simlint
and exits 0 only when every finding is fixed or suppressed; ``check``
statically validates compositions and versioned policy sets; ``model``
runs the explicit-state model checker over Table I cells (exit 1 on
any counterexample — which is the *expected* outcome under
``--mutation``); ``rules`` prints the rule catalog.  ``--json`` emits
machine-readable output and ``--format github`` emits workflow
``::error`` annotations.  Exit codes: 0 clean, 1 findings/errors,
2 usage error.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.checker import (
    PolicySetError,
    check_plan,
    check_policy_set,
    parse_policy_set,
    policy_set_warnings,
)
from repro.analysis.rules import rule_catalog
from repro.analysis.simlint import LintReport, lint_paths

USAGE = __doc__ or ""


def _github_escape(text: str) -> str:
    """Escape a message for a workflow-command annotation value."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def lint_json(report: LintReport) -> str:
    """Machine-readable lint output (one JSON document)."""
    doc = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "findings": [
            {"path": f.path, "line": f.line, "col": f.col,
             "rule": f.rule, "message": f.message}
            for f in report.findings
        ],
        "suppressed": len(report.suppressed),
        "suppressions": report.suppression_counts,
    }
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def lint_github(report: LintReport) -> str:
    """GitHub workflow ``::error`` annotations, one per finding."""
    lines = [
        f"::error file={f.path},line={f.line},col={f.col},"
        f"title=simlint {f.rule}::{_github_escape(f.message)}"
        for f in report.findings
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_format(argv: List[str]) -> Optional[str]:
    """Pop ``--json`` / ``--format X`` from ``argv``; returns the format.

    Mutates ``argv`` in place; returns ``"text"`` (default), ``"json"``
    or ``"github"``, or None on a usage error (already reported).
    """
    fmt = "text"
    i = 0
    while i < len(argv):
        if argv[i] == "--json":
            fmt = "json"
            del argv[i]
        elif argv[i] == "--format":
            if i + 1 >= len(argv):
                print("--format requires a value (text|json|github)",
                      file=sys.stderr)
                return None
            fmt = argv[i + 1]
            if fmt not in ("text", "json", "github"):
                print(f"unknown format {fmt!r} (want text|json|github)",
                      file=sys.stderr)
                return None
            del argv[i:i + 2]
        else:
            i += 1
    return fmt


def _lint(argv: List[str]) -> int:
    argv = list(argv)
    fmt = _parse_format(argv)
    if fmt is None:
        return 2
    rules: Optional[List[str]] = None
    show_stats = False
    paths: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--rules":
            spec = next(it, None)
            if spec is None:
                print("--rules requires a comma-separated list", file=sys.stderr)
                return 2
            rules = [r.strip() for r in spec.split(",") if r.strip()]
        elif arg == "--stats":
            show_stats = True
        elif arg.startswith("-"):
            print(f"unknown lint option {arg!r}", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if not paths:
        print("lint requires at least one file or directory", file=sys.stderr)
        return 2
    try:
        report = lint_paths(paths, rules=rules)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if fmt == "json":
        sys.stdout.write(lint_json(report))
    elif fmt == "github":
        sys.stdout.write(lint_github(report))
    else:
        print(report.render())
        if show_stats:
            for where, count in sorted(report.suppression_counts.items()):
                print(f"suppression {where}: waived {count} finding(s)")
    return 0 if report.ok else 1


def _check(argv: List[str]) -> int:
    argv = list(argv)
    fmt = _parse_format(argv)
    if fmt is None:
        return 2
    compositions: List[str] = []
    policy_files: List[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--composition":
            value = next(it, None)
            if value is None:
                print("--composition requires an expression", file=sys.stderr)
                return 2
            compositions.append(value)
        elif arg == "--policies":
            value = next(it, None)
            if value is None:
                print("--policies requires a file path", file=sys.stderr)
                return 2
            policy_files.append(value)
        else:
            print(f"unknown check argument {arg!r}", file=sys.stderr)
            return 2
    if not compositions and not policy_files:
        print("check requires --composition and/or --policies", file=sys.stderr)
        return 2
    results: List[Dict] = []
    for text in compositions:
        errors = check_plan(text)
        results.append({
            "kind": "composition", "target": text,
            "ok": not errors,
            "errors": [err.render() for err in errors],
            "warnings": [],
        })
    for path in policy_files:
        try:
            source = Path(path).read_text()
        except OSError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        try:
            ps = parse_policy_set(source)
        except PolicySetError as exc:
            results.append({
                "kind": "policies", "target": path, "ok": False,
                "errors": [err.render() for err in exc.errors],
                "warnings": [],
            })
            continue
        errors = check_policy_set(ps)
        results.append({
            "kind": "policies", "target": path,
            "ok": not errors,
            "errors": [err.render() for err in errors],
            "warnings": list(policy_set_warnings(ps)),
            "subtrees": len(ps.subtrees),
            "version": ps.version,
        })
    failed = any(not r["ok"] for r in results)
    if fmt == "json":
        doc = {"ok": not failed, "results": results}
        sys.stdout.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
    elif fmt == "github":
        for r in results:
            for err in r["errors"]:
                where = (f"file={r['target']}," if r["kind"] == "policies"
                         else "")
                sys.stdout.write(
                    f"::error {where}title=repro.analysis check::"
                    f"{_github_escape(err)}\n"
                )
    else:
        for r in results:
            if r["ok"]:
                if r["kind"] == "policies":
                    print(f"{r['target']}: ok ({r['subtrees']} subtree(s), "
                          f"version {r['version']})")
                else:
                    print(f"composition {r['target']!r}: ok")
            else:
                label = (r["target"] if r["kind"] == "policies"
                         else f"composition {r['target']!r}")
                for err in r["errors"]:
                    print(f"{label}: {err}")
            for warning in r.get("warnings", []):
                print(f"{r['target']}: warning: {warning}")
    return 1 if failed else 0


def _model(argv: List[str]) -> int:
    from repro.analysis.model import (
        MUTATIONS, explore_matrix, model_report_json,
    )
    from repro.conformance.driver import CELLS, CONSISTENCIES, DURABILITIES

    cells: List = []
    depth = 4
    budget = 400
    mutation = None
    reduction = True
    out_path: Optional[str] = None
    as_json = False
    it = iter(argv)
    for arg in it:
        if arg == "--cell":
            value = next(it, None)
            if value is None or "," not in value:
                print("--cell requires CONSISTENCY,DURABILITY", file=sys.stderr)
                return 2
            c, d = (p.strip() for p in value.split(",", 1))
            if c not in CONSISTENCIES or d not in DURABILITIES:
                print(
                    f"unknown cell {value!r}; consistencies: "
                    f"{CONSISTENCIES}, durabilities: {DURABILITIES}",
                    file=sys.stderr,
                )
                return 2
            cells.append((c, d))
        elif arg in ("--depth", "--budget"):
            value = next(it, None)
            if value is None or not value.isdigit():
                print(f"{arg} requires a positive integer", file=sys.stderr)
                return 2
            if arg == "--depth":
                depth = int(value)
            else:
                budget = int(value)
        elif arg == "--mutation":
            value = next(it, None)
            if value is None or value not in MUTATIONS:
                print(
                    f"--mutation requires one of {sorted(MUTATIONS)}",
                    file=sys.stderr,
                )
                return 2
            mutation = MUTATIONS[value]
        elif arg == "--no-reduction":
            reduction = False
        elif arg == "--out":
            out_path = next(it, None)
            if out_path is None:
                print("--out requires a file path", file=sys.stderr)
                return 2
        elif arg == "--json":
            as_json = True
        else:
            print(f"unknown model option {arg!r}", file=sys.stderr)
            return 2
    report = explore_matrix(
        cells or CELLS, depth=depth, budget=budget,
        mutation=mutation, reduction=reduction,
    )
    text = model_report_json(report)
    if out_path is not None:
        Path(out_path).write_text(text)
    if as_json:
        sys.stdout.write(text)
    else:
        for cell in report["cells"]:
            status = "ok" if cell["ok"] else "VIOLATION"
            tail = "exhausted" if cell["exhausted"] else "budget-capped"
            print(
                f"{cell['cell']}: {status} runs={cell['runs']} "
                f"states={cell['distinct_states']} pruned={cell['pruned']} "
                f"({tail})"
            )
            ce = cell["counterexample"]
            if ce is not None:
                print(f"  minimal counterexample "
                      f"(variant {ce['variant']}, "
                      f"schedule {ce['schedule']}):")
                for block in ce["decisions"]:
                    for line in block.splitlines():
                        print(f"    {line}")
                for v in ce["violations"]:
                    print(f"    {v['code']}: {v['message']}")
        verdict = "OK" if report["ok"] else "VIOLATION"
        extra = f" [mutation: {report['mutation']}]" if report["mutation"] \
            else ""
        print(f"model: {verdict} ({len(report['cells'])} cell(s), "
              f"depth {depth}){extra}")
    return 0 if report["ok"] else 1


def _rules() -> int:
    for rule_id, summary in rule_catalog().items():
        print(f"{rule_id}: {summary}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(USAGE.strip())
        return 0 if argv else 2
    cmd, rest = argv[0], argv[1:]
    if cmd == "lint":
        return _lint(rest)
    if cmd == "check":
        return _check(rest)
    if cmd == "model":
        return _model(rest)
    if cmd == "rules":
        return _rules()
    # Default: treat every argument as a lint target/option.
    return _lint(argv)


if __name__ == "__main__":
    raise SystemExit(main())
