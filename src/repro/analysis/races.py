"""Schedule-artifact race detector for the discrete-event engine.

Two processes that touch the same shared resource at the same simulated
timestamp are ordered only by the engine's seq tie-breaker — a schedule
artifact, not a modeled guarantee.  If at least one access is a write
and neither access happens-before the other, the outcome depends on
dispatch order and would silently change under any engine refactor (or
under the model checker's alternative schedules).  This detector makes
that class of bug fail loudly in tests instead of drifting benchmark
numbers.

Happens-before is certified with full vector clocks maintained by
:class:`repro.analysis.causality.CausalityTracker` — the same causality
core the model checker's commutativity reduction uses — rather than the
old same-instant name-chain walk: every event is stamped with its
triggerer's clock at trigger time, resumes merge stamps into process
clocks, and two accesses race iff their clocks are concurrent.  Accesses
at *different* instants never race: the engine clock orders them under
every schedule (the scheduler only permutes same-instant ties), so
conflict candidates are still batched per instant.

Usage::

    det = RaceDetector(engine)
    det.watch(mds.mdstore, "mds0.mdstore",
              reads=("resolve",), writes=("mkdir", "create"))
    ... run the scenario ...
    det.check()        # raises RaceError listing conflicting accesses

or ``watch_cluster(det, cluster)`` to register the standard shared
resources (metadata stores, inode tables, the object store, client
journals) in one call.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.causality import CausalityTracker, VectorClock
from repro.sim.engine import Engine

__all__ = ["Access", "Race", "RaceError", "RaceDetector", "watch_cluster"]


@dataclass(frozen=True)
class Access:
    """One recorded read or write of a shared resource."""

    t: float
    order: int
    kind: str  # "read" | "write"
    resource: str
    key: Any
    process_name: str
    #: Stable per-process id from the causality tracker (names may
    #: collide; pids cannot).
    pid: int
    #: The accessing process's vector clock at the access.
    clock: VectorClock

    def render(self) -> str:
        return (
            f"t={self.t:.9f} {self.kind:5s} {self.resource}"
            f"[{self.key!r}] by {self.process_name}"
        )


@dataclass(frozen=True)
class Race:
    """A same-instant conflicting access pair with no ordering edge."""

    t: float
    resource: str
    key: Any
    first: Access
    second: Access

    def render(self) -> str:
        return (
            f"race at t={self.t:.9f} on {self.resource}[{self.key!r}]: "
            f"{self.first.kind} by {self.first.process_name} vs "
            f"{self.second.kind} by {self.second.process_name} "
            "(no happens-before edge; outcome depends on dispatch order)"
        )


class RaceError(AssertionError):
    """Raised by :meth:`RaceDetector.check` when races were found."""

    def __init__(self, races: List[Race]):
        self.races = races
        lines = [r.render() for r in races[:20]]
        if len(races) > 20:
            lines.append(f"... and {len(races) - 20} more")
        super().__init__(
            f"{len(races)} same-instant race(s) detected:\n" + "\n".join(lines)
        )


class RaceDetector:
    """Opt-in engine instrumentation recording shared-resource accesses.

    Zero accesses are recorded until resources are registered — the
    detector wraps bound methods on the watched objects, so production
    runs pay nothing.  Construction attaches a
    :class:`~repro.analysis.causality.CausalityTracker` to the engine
    (vector clocks for the happens-before certificates); :meth:`detach`
    releases both the method wrappers and the tracker.
    """

    def __init__(self, engine: Engine, max_races: int = 1000):
        self.engine = engine
        self.tracker = CausalityTracker(engine).attach()
        self.max_races = max_races
        self.races: List[Race] = []
        self.accesses_recorded = 0
        self._batch_t: Optional[float] = None
        self._batch: List[Access] = []
        self._order = 0
        self._unpatchers: List[Callable[[], None]] = []

    # -- recording -------------------------------------------------------
    def record(self, kind: str, resource: str, key: Any = None) -> None:
        """Record one access by the currently-executing process.

        Host-context accesses (no active process) are ignored: the host
        driver runs strictly between engine steps and cannot race.
        """
        if kind not in ("read", "write"):
            raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
        proc = self.engine.active_process
        if proc is None:
            return
        now = self.engine.now
        if self._batch_t is not None and now != self._batch_t:
            self._analyze()
        self._batch_t = now
        self._order += 1
        self.accesses_recorded += 1
        self._batch.append(
            Access(
                t=now,
                order=self._order,
                kind=kind,
                resource=resource,
                key=key,
                process_name=proc.name,
                pid=self.tracker.pid_of(proc),
                clock=self.tracker.observe(proc),
            )
        )

    # -- instrumentation -------------------------------------------------
    def watch(
        self,
        obj: Any,
        resource: str,
        reads: Tuple[str, ...] = (),
        writes: Tuple[str, ...] = (),
        key: Optional[Callable[[tuple, dict], Any]] = None,
    ) -> None:
        """Wrap the named methods of ``obj`` to record accesses.

        ``key`` maps ``(args, kwargs)`` of each call to the conflict
        key; the default uses the first positional argument (or None
        for argument-less methods like ``InoTable.allocate``).
        """
        key_fn = key or (lambda args, kwargs: args[0] if args else None)
        for kind, names in (("read", reads), ("write", writes)):
            for name in names:
                original = getattr(obj, name)

                def wrapper(*args, _orig=original, _kind=kind, _name=name,
                            **kwargs):
                    self.record(_kind, resource, key_fn(args, kwargs))
                    return _orig(*args, **kwargs)

                functools.update_wrapper(wrapper, original)
                setattr(obj, name, wrapper)
                self._unpatchers.append(
                    functools.partial(_restore, obj, name, original)
                )

    def detach(self) -> None:
        """Remove every wrapper installed by :meth:`watch` + the tracker."""
        while self._unpatchers:
            self._unpatchers.pop()()
        self.tracker.detach()

    # -- analysis --------------------------------------------------------
    def _analyze(self) -> None:
        """Close the current instant: flag unordered conflicting pairs."""
        batch, self._batch = self._batch, []
        t, self._batch_t = self._batch_t, None
        by_key: Dict[Tuple[str, Any], List[Access]] = {}
        for acc in batch:
            by_key.setdefault((acc.resource, acc.key), []).append(acc)
        for (resource, key_), accs in by_key.items():
            for i, a in enumerate(accs):
                for b in accs[i + 1:]:
                    if a.pid == b.pid:
                        continue
                    if a.kind == "read" and b.kind == "read":
                        continue
                    if not a.clock.concurrent(b.clock):
                        continue
                    if len(self.races) >= self.max_races:
                        return
                    self.races.append(
                        Race(t=t, resource=resource, key=key_,
                             first=a, second=b)
                    )

    def flush(self) -> None:
        """Analyze any still-buffered instant (call after the run ends)."""
        if self._batch:
            self._analyze()

    def check(self) -> None:
        """Flush and raise :class:`RaceError` if any race was recorded."""
        self.flush()
        if self.races:
            raise RaceError(self.races)

    def report(self) -> str:
        self.flush()
        if not self.races:
            return (
                f"no races in {self.accesses_recorded} recorded access(es)\n"
            )
        return "\n".join(r.render() for r in self.races) + "\n"


def _restore(obj: Any, name: str, original: Any) -> None:
    # Instance-level wrappers shadow the class attribute; deleting the
    # instance attribute re-exposes the original bound method.
    try:
        delattr(obj, name)
    except AttributeError:
        setattr(obj, name, original)


def watch_cluster(detector: RaceDetector, cluster: Any) -> RaceDetector:
    """Register a cluster's standard shared resources with ``detector``.

    Covers each MDS's metadata store and inode table, the object store,
    and every decoupled client's journal — the structures the paper's
    mechanisms contend on.
    """
    for mds in cluster.mds_list:
        detector.watch(
            mds.mdstore, f"{mds.name}.mdstore",
            reads=("resolve", "listdir", "exists"),
            writes=("mkdir", "create", "unlink", "rmdir", "rename",
                    "setattr", "apply_event", "set_policy"),
        )
        detector.watch(
            mds.mdstore.inotable, f"{mds.name}.inotable",
            reads=("is_consumed", "owner_of"),
            writes=("allocate", "provision", "mark_consumed",
                    "note_external", "release_unused"),
        )
    detector.watch(
        cluster.objstore, "objstore",
        reads=("stat", "peek"),
        writes=("put", "append", "remove", "read_modify_write"),
        key=lambda args, kwargs: tuple(args[:2]) if len(args) >= 2 else None,
    )
    for dclient in getattr(cluster, "_dclients", []):
        detector.watch(
            dclient.journal, f"{dclient.name}.journal",
            writes=("append", "extend", "clear", "drain", "restore"),
            key=lambda args, kwargs: None,
        )
    return detector
