"""Controlled-scheduler shim for the model checker.

The engine's optional ``scheduler`` hook (see
:meth:`repro.sim.engine.Engine._step_controlled`) surfaces every
dispatch tie — events ready at equal ``(time, priority)`` — and lets a
callback pick which fires first.  :class:`ScheduleController` is that
callback packaged as a replayable *schedule*: a tuple of choice indices
consumed one per decision point.  Running with an empty schedule takes
index 0 everywhere, which reproduces the engine's default seq order
exactly; the model checker's DFS then re-runs the (deterministic)
simulation with systematically extended schedules to visit every other
interleaving.

Each decision records the full ready set with per-alternative metadata
(client tag, declared op target, RPC flag, vector-clock stamp) so the
explorer can both render human-readable traces and apply its
commutativity reduction without re-running anything.

Tags and targets are *declared* by the workload programs:
``tag_process`` names a process tree (children spawned while a tagged
process is active inherit its tag) and ``set_target`` announces what
the tagged program is about to do — a deliberate little protocol, since
the engine itself has no idea what a pending event means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.causality import CausalityTracker, VectorClock
from repro.sim.engine import Engine, Event, Process

__all__ = ["Alternative", "Decision", "ScheduleController"]


def _path_independent(a: Optional[str], b: Optional[str]) -> bool:
    """True when two op targets cannot touch the same namespace entry.

    Requires both declared, distinct, and neither a directory ancestor
    of the other (creating ``/job/d`` and ``/job/d/x`` do not commute).
    """
    if a is None or b is None or a == b:
        return False
    return not a.startswith(b.rstrip("/") + "/") and \
        not b.startswith(a.rstrip("/") + "/")


@dataclass(frozen=True)
class Alternative:
    """One member of a decision's ready set."""

    label: str
    tag: Optional[str]
    path: Optional[str]
    rpc: bool
    clock: Optional[VectorClock]

    def independent(self, other: "Alternative") -> bool:
        """Conservative commutativity test used by the DPOR-lite pruner.

        Two ready events may be reordered without exploring both orders
        only when *every* check passes: they belong to different
        declared clients, their declared targets are disjoint
        non-ancestor paths, and their trigger stamps are causally
        concurrent.  Any missing metadata fails the test — unknown
        means dependent, which only costs exploration, never soundness.

        Two RPCs on disjoint paths *are* treated as independent even
        though they serialize on the shared MDS inode table: the only
        state the swap perturbs is inode numbering, which no checked
        property (and no state fingerprint) observes.  The empirical
        soundness gate — reduced and unreduced exploration must reach
        identical fingerprint sets — holds this assumption to account.
        """
        if self.tag is None or other.tag is None or self.tag == other.tag:
            return False
        if not _path_independent(self.path, other.path):
            return False
        if self.clock is None or other.clock is None:
            return False
        return self.clock.concurrent(other.clock)


@dataclass
class Decision:
    """The ready set seen at one decision point, and what was chosen."""

    index: int
    t: float
    size: int
    chosen: int
    alts: List[Alternative] = field(default_factory=list)

    def prunable(self, a: int) -> bool:
        """Would choosing ``a`` here reach an already-covered state?

        Choosing alternative ``a`` first (instead of in its default
        position) only reorders it against the alternatives before it;
        if it commutes with *all* of them the resulting interleaving is
        equivalent to one the DFS reaches through other prefixes.
        """
        if a <= 0 or a >= len(self.alts):
            return False
        alt = self.alts[a]
        return all(alt.independent(self.alts[i]) for i in range(a))

    def render(self) -> str:
        parts = []
        for i, alt in enumerate(self.alts):
            mark = "*" if i == self.chosen else " "
            what = alt.path or "?"
            kind = "rpc" if alt.rpc else "op"
            parts.append(f"  {mark}[{i}] {alt.label} ({kind} {what})")
        return f"decision {self.index} at t={self.t:.9f} " \
            f"({self.size} ready):\n" + "\n".join(parts)


class ScheduleController:
    """Replayable ready-set scheduler (the engine's ``scheduler`` hook).

    ``schedule`` is a sequence of choice indices; past its end (and for
    out-of-range entries, which a stale schedule can produce when an
    earlier choice changed the ready-set shape) the controller clamps
    to index 0, i.e. the engine's default order.  ``taken`` records the
    effective choices and ``decisions`` the full ready sets, so the
    explorer can extend any prefix.
    """

    def __init__(
        self,
        engine: Engine,
        schedule: Sequence[int] = (),
        tracker: Optional[CausalityTracker] = None,
        expose: str = "tagged",
    ):
        if expose not in ("tagged", "all"):
            raise ValueError(f"expose must be 'tagged' or 'all', got {expose!r}")
        self.engine = engine
        self.schedule: Tuple[int, ...] = tuple(schedule)
        self.tracker = tracker
        #: Which ties become decision points.  ``"tagged"`` (the model
        #: checker's scope bound) records a decision only when the
        #: ready set spans at least two *distinct declared clients*;
        #: same-client and pure-plumbing ties (network micro-hops,
        #: daemon loops, join barriers) auto-resolve to the default
        #: order — one logical cross-client ordering otherwise
        #: explodes into 2^k micro-step permutations that no checked
        #: property can tell apart.  ``"all"`` records every tie; the
        #: equivalence test holds both modes to the same reachable
        #: fingerprint set at small depth.
        self.expose = expose
        self.taken: List[int] = []
        self.decisions: List[Decision] = []
        #: Process -> workload tag ("owner"/"intf"/...).  A side table
        #: because Process defines ``__slots__``; identity-keyed strong
        #: refs, same pattern as the causality tracker's clock maps.
        self._tags: Dict[Process, str] = {}
        #: tag -> (declared op path, is-RPC) for the *next* action.
        self._targets: Dict[str, Tuple[Optional[str], bool]] = {}
        self._orig_process = None
        self._attached = False

    # -- workload protocol ----------------------------------------------
    def tag_process(self, proc: Process, tag: str) -> None:
        self._tags[proc] = tag

    def set_target(self, tag: str, path: Optional[str],
                   rpc: bool = False) -> None:
        """Declare what the tagged program is about to do."""
        self._targets[tag] = (path, rpc)

    def clear_target(self, tag: str) -> None:
        self._targets.pop(tag, None)

    # -- lifecycle -------------------------------------------------------
    def attach(self) -> "ScheduleController":
        if self._attached:
            return self
        self._attached = True
        self.engine.scheduler = self
        engine = self.engine
        self._orig_process = engine.process

        def process(generator, name=None):
            proc = self._orig_process(generator, name=name)
            spawner = engine.active_process
            if spawner is not None and proc not in self._tags:
                tag = self._tags.get(spawner)
                if tag is not None:
                    self._tags[proc] = tag
            return proc

        engine.process = process
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self._attached = False
        self.engine.scheduler = None
        # The instance attribute shadows the bound method; removing it
        # re-exposes the original.
        try:
            delattr(self.engine, "process")
        except AttributeError:
            self.engine.process = self._orig_process
        self._orig_process = None

    # -- scheduler hook --------------------------------------------------
    def _delivery_tag(self, proc: Process) -> Optional[str]:
        """Best-effort attribution of an untagged delivery process.

        Reply deliveries (``MetadataServer._delayed_reply`` and kin)
        are spawned by untagged daemon loops but exist solely to
        succeed one client's pending ``done`` event — which sits in
        the generator frame, with the waiting client process already
        registered on its callbacks.  Attributing the delivery to that
        client lets the reduction see it as part of the client's RPC
        conversation instead of an opaque always-dependent action.
        Purely analysis-side and fail-open: anything unexpected just
        yields no tag.
        """
        frame = getattr(getattr(proc, "generator", None), "gi_frame", None)
        if frame is None:
            return None
        done = frame.f_locals.get("done")
        if not isinstance(done, Event):
            return None
        for cb in done.callbacks:
            waiter = getattr(cb, "__self__", None)
            if isinstance(waiter, Process):
                tag = self._tags.get(waiter)
                if tag is not None:
                    return tag
        return None

    def _describe(self, event: Event) -> Alternative:
        proc: Optional[Process] = None
        if isinstance(event, Process):
            proc = event
        else:
            for cb in event.callbacks:
                owner = getattr(cb, "__self__", None)
                if isinstance(owner, Process):
                    proc = owner
                    break
        tag = self._tags.get(proc) if proc is not None else None
        if tag is None and proc is not None:
            tag = self._delivery_tag(proc)
        name = proc.name if proc is not None else type(event).__name__
        path, rpc = self._targets.get(tag, (None, False)) \
            if tag is not None else (None, False)
        clock = self.tracker.event_clock(event) if self.tracker else None
        return Alternative(
            label=f"{tag or '-'}:{name}", tag=tag, path=path, rpc=rpc,
            clock=clock,
        )

    def __call__(self, events: List[Event]) -> int:
        alts = [self._describe(ev) for ev in events]
        if self.expose == "tagged":
            tags = {a.tag for a in alts if a.tag is not None}
            if len(tags) < 2:
                # Not a cross-client tie: default order, no decision
                # recorded, no schedule position consumed.
                return 0
        i = len(self.taken)
        choice = self.schedule[i] if i < len(self.schedule) else 0
        if not 0 <= choice < len(events):
            choice = 0
        self.decisions.append(
            Decision(
                index=i,
                t=self.engine.now,
                size=len(events),
                chosen=choice,
                alts=alts,
            )
        )
        self.taken.append(choice)
        return choice
