"""Static checker for mechanism compositions and subtree policy sets.

A Cudele composition (``+`` / ``||`` over the seven mechanisms, paper
§III) is only meaningful when mechanism dependencies hold — e.g.
``nonvolatile_apply`` without a client journal to replay is nonsense the
runtime would otherwise discover mid-run.  :func:`check_plan` validates
a parsed :class:`~repro.core.dsl.CompositionPlan` against the mechanism
dependency DAG before execution; :func:`check_policy_set` validates a
versioned multi-subtree policies file (nested-subtree conflicts,
overlapping allocated-inode ranges, contradictory interfere policies).

Errors are :class:`CheckError` records naming the offending stage or
subtree; :class:`CompositionError` / :class:`PolicySetError` carry the
full list when raising is requested.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.dsl import CompositionPlan, DslError, parse_composition
from repro.core.policy import SubtreePolicy, composition_warnings
from repro.core.policyfile import PolicyFileError, parse_policies

__all__ = [
    "CheckError",
    "CompositionError",
    "PolicySetError",
    "MECHANISM_DEPENDENCIES",
    "check_plan",
    "check_policy",
    "PolicySet",
    "SubtreeEntry",
    "parse_policy_set",
    "check_policy_set",
    "policy_set_warnings",
    "check_inotable",
]

#: Workload-phase producers act for the whole job, so they satisfy a
#: dependency from any position in the composition.
_WORKLOAD_PRODUCERS = {"rpcs", "append_client_journal"}

#: mechanism -> (set of acceptable upstream providers, why it needs one).
MECHANISM_DEPENDENCIES: Dict[str, Tuple[frozenset, str]] = {
    "volatile_apply": (
        frozenset({"append_client_journal"}),
        "it replays the client journal onto the MDS's in-memory store",
    ),
    "nonvolatile_apply": (
        frozenset({"append_client_journal"}),
        "it replays the client journal through the object store",
    ),
    "local_persist": (
        frozenset({"append_client_journal", "rpcs"}),
        "it writes recorded updates to the client's disk",
    ),
    "global_persist": (
        frozenset({"append_client_journal", "rpcs"}),
        "it pushes recorded updates into the object store",
    ),
    "stream": (
        frozenset({"rpcs", "volatile_apply"}),
        "it streams the MDS journal, so updates must reach the MDS",
    ),
}

#: Mechanism pairs that cannot share a composition (hard conflicts, as
#: opposed to the advisory pairings in ``composition_warnings``).
MECHANISM_CONFLICTS: List[Tuple[str, str, str]] = [
    (
        "stream", "append_client_journal",
        "stream persists the MDS journal but append_client_journal "
        "diverts updates into the decoupled client journal; the streamed "
        "journal would never contain them",
    ),
]


@dataclass(frozen=True)
class CheckError:
    """One static-checker diagnostic with its location."""

    code: str
    where: str  # e.g. "stage 2 (volatile_apply)" or "subtree /a vs /a/b"
    message: str

    def render(self) -> str:
        return f"{self.where}: {self.code}: {self.message}"


class CompositionError(ValueError):
    """A composition failed static checking."""

    def __init__(self, errors: List[CheckError]):
        self.errors = errors
        super().__init__(
            "; ".join(e.render() for e in errors) or "composition check failed"
        )


class PolicySetError(ValueError):
    """A policy set failed parsing or static checking."""

    def __init__(self, errors: List[CheckError]):
        self.errors = errors
        super().__init__(
            "; ".join(e.render() for e in errors) or "policy set check failed"
        )


# --------------------------------------------------------------------------
# composition checking
# --------------------------------------------------------------------------


def check_plan(
    plan: Union[CompositionPlan, str], raise_on_error: bool = False
) -> List[CheckError]:
    """Validate one composition against the mechanism dependency DAG.

    Checks, per the paper's mechanism semantics (§III-A):

    * journal-consuming mechanisms need an upstream producer
      (``append_client_journal`` for the apply mechanisms; a recording
      mechanism for the persists; an MDS-routing one for ``stream``),
    * ``stream`` is exclusive with the decoupled client journal,
    * a stage may not repeat a mechanism (running one mechanism twice in
      parallel against the same journal is never meaningful).
    """
    if isinstance(plan, str):
        try:
            plan = parse_composition(plan)
        except DslError as exc:
            errors = [CheckError("parse-error", "composition", str(exc))]
            if raise_on_error:
                raise CompositionError(errors) from exc
            return errors
    errors: List[CheckError] = []
    positions: Dict[str, int] = {}
    for idx, stage in enumerate(plan.stages):
        seen_in_stage = set()
        for mech in stage:
            if mech in seen_in_stage:
                errors.append(
                    CheckError(
                        "duplicate-mechanism",
                        f"stage {idx + 1} ({'||'.join(stage)})",
                        f"mechanism {mech!r} appears twice in one parallel "
                        "group; it would run against the same journal twice",
                    )
                )
            seen_in_stage.add(mech)
            positions.setdefault(mech, idx)
    mechs = set(positions)
    for mech, (providers, why) in MECHANISM_DEPENDENCIES.items():
        if mech not in mechs:
            continue
        satisfied = any(
            p in mechs
            and (p in _WORKLOAD_PRODUCERS or positions[p] < positions[mech])
            for p in providers
        )
        if not satisfied:
            errors.append(
                CheckError(
                    "missing-dependency",
                    f"stage {positions[mech] + 1} ({mech})",
                    f"{mech} requires one of "
                    f"{sorted(providers)} upstream: {why}",
                )
            )
    for a, b, why in MECHANISM_CONFLICTS:
        if a in mechs and b in mechs:
            errors.append(
                CheckError(
                    "conflicting-mechanisms",
                    f"stage {positions[a] + 1} ({a}) vs "
                    f"stage {positions[b] + 1} ({b})",
                    why,
                )
            )
    if raise_on_error and errors:
        raise CompositionError(errors)
    return errors


def check_policy(
    policy: SubtreePolicy, raise_on_error: bool = False
) -> List[CheckError]:
    """Validate one subtree policy's combined composition."""
    return check_plan(policy.plan, raise_on_error=raise_on_error)


# --------------------------------------------------------------------------
# versioned policy sets
# --------------------------------------------------------------------------

_SECTION_RE = re.compile(r"^\[(?P<path>/[^\]]*)\]\s*$")
SUPPORTED_VERSIONS = (1,)


@dataclass
class SubtreeEntry:
    """One subtree's parsed policy plus checker-only extras."""

    path: str
    policy: SubtreePolicy
    lineno: int
    #: First inode of the subtree's allocated range; with the policy's
    #: ``allocated_inodes`` count this fixes ``[base, base + count)``.
    inode_base: Optional[int] = None

    @property
    def inode_range(self) -> Optional[Tuple[int, int]]:
        if self.inode_base is None or self.policy.allocated_inodes <= 0:
            return None
        return (self.inode_base, self.inode_base + self.policy.allocated_inodes)


@dataclass
class PolicySet:
    """A parsed versioned policies file covering several subtrees."""

    version: int
    subtrees: Dict[str, SubtreeEntry] = field(default_factory=dict)

    def ancestors_of(self, path: str) -> List[SubtreeEntry]:
        """Entries for proper ancestors of ``path``, outermost first."""
        out = []
        for other, entry in self.subtrees.items():
            if path != other and (path + "/").startswith(other.rstrip("/") + "/"):
                out.append(entry)
        out.sort(key=lambda e: len(e.path))
        return out


def parse_policy_set(text: str) -> PolicySet:
    """Parse a versioned multi-subtree policies file.

    Format: a ``version: N`` header, then one ``[/subtree/path]``
    section per subtree whose body is the flat single-subtree format of
    :mod:`repro.core.policyfile`, plus the checker-only ``inode_base``
    key.  Raises :class:`PolicySetError` naming every problem found.
    """
    errors: List[CheckError] = []
    version: Optional[int] = None
    sections: List[Tuple[str, int, List[str]]] = []
    current: Optional[List[str]] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        m = _SECTION_RE.match(stripped)
        if m:
            path = "/" + "/".join(p for p in m.group("path").split("/") if p)
            if any(path == s[0] for s in sections):
                errors.append(
                    CheckError(
                        "duplicate-subtree", f"subtree {path}",
                        f"line {lineno}: subtree declared twice",
                    )
                )
            current = []
            sections.append((path, lineno, current))
            continue
        if not stripped:
            continue
        if version is None and current is None:
            key, _, value = stripped.partition(":")
            if key.strip().lower() == "version":
                try:
                    version = int(value)
                except ValueError:
                    errors.append(
                        CheckError(
                            "bad-version", "header",
                            f"line {lineno}: version must be an integer, "
                            f"got {value.strip()!r}",
                        )
                    )
                    version = -1
                continue
        if current is None:
            errors.append(
                CheckError(
                    "stray-line", "header",
                    f"line {lineno}: expected 'version: N' or a "
                    f"'[/subtree]' section before {stripped!r}",
                )
            )
            continue
        current.append(stripped)
    if version is None:
        errors.append(
            CheckError("missing-version", "header",
                       "policy sets must declare 'version: N'")
        )
    elif version not in SUPPORTED_VERSIONS and version != -1:
        errors.append(
            CheckError(
                "unsupported-version", "header",
                f"version {version} not supported "
                f"(supported: {list(SUPPORTED_VERSIONS)})",
            )
        )
    ps = PolicySet(version=version or 0)
    for path, lineno, body in sections:
        inode_base: Optional[int] = None
        policy_lines: List[str] = []
        for line in body:
            key, _, value = line.partition(":")
            if key.strip().lower() == "inode_base":
                try:
                    inode_base = int(value)
                    if inode_base <= 0:
                        raise ValueError
                except ValueError:
                    errors.append(
                        CheckError(
                            "bad-inode-base", f"subtree {path}",
                            f"inode_base must be a positive integer, "
                            f"got {value.strip()!r}",
                        )
                    )
            else:
                policy_lines.append(line)
        try:
            policy = parse_policies("\n".join(policy_lines))
        except PolicyFileError as exc:
            errors.append(
                CheckError("bad-policy", f"subtree {path}", str(exc))
            )
            continue
        if path not in ps.subtrees:
            ps.subtrees[path] = SubtreeEntry(
                path=path, policy=policy, lineno=lineno, inode_base=inode_base
            )
    if errors:
        raise PolicySetError(errors)
    return ps


def _consistency_rank(policy: SubtreePolicy) -> int:
    """0 = invisible, 1 = weak, 2 = strong (cf. paper Figure 1)."""
    mechs = set(policy.plan.mechanisms)
    if "rpcs" in mechs:
        return 2
    if {"volatile_apply", "nonvolatile_apply"} & mechs:
        return 1
    return 0


def check_policy_set(
    ps: PolicySet, raise_on_error: bool = False
) -> List[CheckError]:
    """Cross-subtree validation of a parsed policy set.

    * every subtree's composition passes :func:`check_plan`,
    * allocated-inode ranges (``[inode_base, inode_base +
      allocated_inodes)``) of distinct subtrees must not overlap — two
      decoupled clients minting the same inode numbers collide at merge,
    * a subtree nested under an ``interfere: block`` subtree cannot
      relax it to ``allow`` (the parent promised its client exclusive
      access to the whole subtree),
    * a nested subtree cannot weaken its ancestor's consistency
      (the embeddable-policies rule, paper §VII).
    """
    errors: List[CheckError] = []
    entries = sorted(ps.subtrees.values(), key=lambda e: e.path)
    for entry in entries:
        for err in check_plan(entry.policy.plan):
            errors.append(
                CheckError(
                    err.code, f"subtree {entry.path}, {err.where}", err.message
                )
            )
    for i, a in enumerate(entries):
        ra = a.inode_range
        if ra is None:
            continue
        for b in entries[i + 1:]:
            rb = b.inode_range
            if rb is None:
                continue
            if ra[0] < rb[1] and rb[0] < ra[1]:
                lo, hi = max(ra[0], rb[0]), min(ra[1], rb[1])
                errors.append(
                    CheckError(
                        "inode-overlap",
                        f"subtree {a.path} vs {b.path}",
                        f"allocated-inode ranges [{ra[0]}, {ra[1]}) and "
                        f"[{rb[0]}, {rb[1]}) overlap on [{lo}, {hi}); "
                        "decoupled creates would collide at merge time",
                    )
                )
    for entry in entries:
        for ancestor in ps.ancestors_of(entry.path):
            if (
                ancestor.policy.interfere == "block"
                and entry.policy.interfere == "allow"
            ):
                errors.append(
                    CheckError(
                        "interfere-conflict",
                        f"subtree {entry.path} under {ancestor.path}",
                        f"{entry.path} sets interfere=allow inside "
                        f"{ancestor.path} which blocks interference; the "
                        "outer contract promised exclusive access",
                    )
                )
            if _consistency_rank(entry.policy) < _consistency_rank(
                ancestor.policy
            ):
                errors.append(
                    CheckError(
                        "embedding-violation",
                        f"subtree {entry.path} under {ancestor.path}",
                        f"{entry.path} weakens the consistency of "
                        f"{ancestor.path}; embedded subtrees must maintain "
                        "the parent's consistency guarantee (paper §VII)",
                    )
                )
    if raise_on_error and errors:
        raise PolicySetError(errors)
    return errors


def policy_set_warnings(ps: PolicySet) -> List[str]:
    """Advisory composition pairings (paper §III-B) per subtree."""
    out: List[str] = []
    for path in sorted(ps.subtrees):
        policy = ps.subtrees[path].policy
        out.extend(
            f"subtree {path}: {w}"
            for w in composition_warnings(policy.combined_composition)
        )
    return out


def check_inotable(inotable, raise_on_error: bool = False) -> List[CheckError]:
    """Runtime defense-in-depth: provisioned ranges must be disjoint.

    ``InoTable.provision`` allocates disjoint ranges by construction;
    this guards against hand-assembled tables and future refactors.
    """
    flat = []
    for client_id in sorted(inotable._ranges):
        for rng in inotable._ranges[client_id]:
            flat.append((client_id, rng))
    errors: List[CheckError] = []
    for i, (ca, ra) in enumerate(flat):
        for cb, rb in flat[i + 1:]:
            if ra.start < rb.end and rb.start < ra.end:
                errors.append(
                    CheckError(
                        "inode-overlap",
                        f"client {ca} vs client {cb}",
                        f"provisioned ranges [{ra.start}, {ra.end}) and "
                        f"[{rb.start}, {rb.end}) overlap",
                    )
                )
    if raise_on_error and errors:
        raise PolicySetError(errors)
    return errors
