"""The simlint determinism rule catalog.

Each rule is a function ``rule(tree, path) -> iterable of (line, col,
message)`` registered under a stable id.  The rules encode *this repo's*
determinism contract: every bench number and fault log must be a pure
function of (code, seed), so simulation code may not consult wall
clocks, global RNGs, or hash-order iteration on paths that reach
scheduling or output.  Rules are pluggable — register extra ones with
:func:`register_rule` and select subsets via ``lint_paths(rules=...)``.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple

__all__ = ["RULES", "RULE_SUMMARIES", "register_rule", "rule_catalog"]

RuleHit = Tuple[int, int, str]
RuleFn = Callable[[ast.AST, str], Iterable[RuleHit]]

RULES: Dict[str, RuleFn] = {}
RULE_SUMMARIES: Dict[str, str] = {}


def register_rule(rule_id: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    """Register a lint rule under ``rule_id`` (decorator)."""

    def deco(fn: RuleFn) -> RuleFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = fn
        RULE_SUMMARIES[rule_id] = summary
        return fn

    return deco


def rule_catalog() -> Dict[str, str]:
    """Rule id -> one-line summary, sorted by id."""
    return {rid: RULE_SUMMARIES[rid] for rid in sorted(RULES)}


# --------------------------------------------------------------------------
# shared AST helpers
# --------------------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_unordered_iterable(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it is an unordered iterable expression.

    Matches set literals, ``set(...)``/``frozenset(...)`` calls, and
    no-argument ``.values()``/``.keys()`` calls (dict views: insertion-
    ordered in CPython, but the *insertion order itself* is rarely a
    simulation invariant, and set-typed attributes routinely flow
    through these).  ``sorted(...)`` wrappers are handled by callers
    never reaching this on the inner node.
    """
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
            return f"{fn.id}(...)"
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr in ("values", "keys")
            and not node.args
            and not node.keywords
        ):
            base = _dotted(fn.value) or "<expr>"
            return f"{base}.{fn.attr}()"
    return None


#: Reducers whose result does not depend on iteration order (``sum`` is
#: deliberately absent: float addition is order-sensitive — see the
#: ``float-accum`` rule).
_ORDER_FREE_REDUCERS = {
    "any", "all", "min", "max", "len", "sorted", "set", "frozenset",
    "dict", "Counter",
}


def _walk(tree: ast.AST) -> Iterator[ast.AST]:
    yield from ast.walk(tree)


# --------------------------------------------------------------------------
# rules
# --------------------------------------------------------------------------

_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.sleep",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "date.today",
}


@register_rule(
    "wall-clock",
    "no host wall-clock reads (time.time/datetime.now/...) in simulation "
    "code; simulated time is Engine.now",
)
def rule_wall_clock(tree: ast.AST, path: str) -> Iterator[RuleHit]:
    for node in _walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted in _WALL_CLOCK_CALLS:
            yield (
                node.lineno,
                node.col_offset,
                f"call to {dotted}() reads the host clock; simulation "
                "code must derive time from Engine.now",
            )


@register_rule(
    "global-random",
    "no global RNG draws (random.*, np.random.*); randomness comes from "
    "seeded per-component RngStream instances",
)
def rule_global_random(tree: ast.AST, path: str) -> Iterator[RuleHit]:
    for node in _walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        if dotted.startswith("random."):
            yield (
                node.lineno,
                node.col_offset,
                f"{dotted}() draws from the process-global RNG; use a "
                "seeded repro.sim.rng.RngStream",
            )
        elif dotted in ("np.random.default_rng", "numpy.random.default_rng"):
            if not node.args and not node.keywords:
                yield (
                    node.lineno,
                    node.col_offset,
                    "default_rng() without a seed is entropy-seeded; pass "
                    "a seed derived from the run's root seed",
                )
        elif dotted.startswith(("np.random.", "numpy.random.")):
            yield (
                node.lineno,
                node.col_offset,
                f"{dotted}() uses numpy's global RNG; use a seeded "
                "Generator (np.random.default_rng(seed)) or RngStream",
            )


@register_rule(
    "unordered-iter",
    "no for-loops over sets or dict views where body order can reach "
    "scheduling or output; iterate a sorted() copy",
)
def rule_unordered_iter(tree: ast.AST, path: str) -> Iterator[RuleHit]:
    # Comprehensions feeding an order-free reducer are fine; collect the
    # generator nodes they own so the main walk can skip them.
    excused = set()
    for node in _walk(tree):
        if isinstance(node, ast.Call):
            fn = node.func
            name = fn.id if isinstance(fn, ast.Name) else None
            if name in _ORDER_FREE_REDUCERS or name == "sum":
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                        ast.SetComp, ast.DictComp)):
                        excused.update(id(c) for c in arg.generators)
    for node in _walk(tree):
        if isinstance(node, ast.For):
            desc = _is_unordered_iterable(node.iter)
            if desc:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"for-loop iterates {desc}: body order follows hash "
                    "order; iterate sorted(...) instead",
                )
        elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                               ast.DictComp)):
            for comp in node.generators:
                if id(comp) in excused:
                    continue
                desc = _is_unordered_iterable(comp.iter)
                if desc:
                    yield (
                        comp.iter.lineno,
                        comp.iter.col_offset,
                        f"comprehension iterates {desc}: element order "
                        "follows hash order; iterate sorted(...) instead",
                    )


@register_rule(
    "float-accum",
    "no sum() over unordered iterables on stats paths; float addition is "
    "order-sensitive, so sum a sorted() copy (or suppress for integers)",
)
def rule_float_accum(tree: ast.AST, path: str) -> Iterator[RuleHit]:
    for node in _walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and node.args
        ):
            continue
        arg = node.args[0]
        sources = []
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            sources = [c.iter for c in arg.generators]
        else:
            sources = [arg]
        for src in sources:
            desc = _is_unordered_iterable(src)
            if desc:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"sum() accumulates over {desc} in hash order; float "
                    "sums are order-sensitive — sum over sorted(...) or "
                    "suppress with a justification if provably integral",
                )


@register_rule(
    "yieldless-process",
    "functions annotated -> Generator must contain a yield, otherwise "
    "Engine.process() gets a plain call result and raises TypeError",
)
def rule_yieldless_process(tree: ast.AST, path: str) -> Iterator[RuleHit]:
    for node in _walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        returns = node.returns
        if returns is None:
            continue
        ann = ast.unparse(returns) if hasattr(ast, "unparse") else ""
        if "Generator" not in ann and "Iterator[Event" not in ann:
            continue
        has_yield = any(
            isinstance(inner, (ast.Yield, ast.YieldFrom))
            for inner in _walk(node)
            # Don't credit yields belonging to nested function defs.
            if _owner(inner, node)
        )
        if not has_yield:
            yield (
                node.lineno,
                node.col_offset,
                f"{node.name}() is annotated as a generator process but "
                "contains no yield; Engine.process() would raise "
                "TypeError at runtime",
            )


def _owner(node: ast.AST, fn: ast.AST) -> bool:
    """True when ``node``'s enclosing function is ``fn`` itself.

    Computed structurally: walk ``fn``'s immediate body, stopping at
    nested function boundaries.
    """
    stack = list(getattr(fn, "body", []))
    while stack:
        cur = stack.pop()
        if cur is node:
            return True
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(cur))
    return False


@register_rule(
    "hash-order-key",
    "sort keys must not depend on object identity or hashes "
    "(sorted(key=id)/hash() in key functions); such orders vary across "
    "processes and hash seeds",
)
def rule_hash_order_key(tree: ast.AST, path: str) -> Iterator[RuleHit]:
    for node in _walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        is_sort = (
            (isinstance(fn, ast.Name) and fn.id == "sorted")
            or (isinstance(fn, ast.Attribute) and fn.attr == "sort")
        )
        if not is_sort:
            continue
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            val = kw.value
            if isinstance(val, ast.Name) and val.id in ("id", "hash"):
                yield (
                    val.lineno,
                    val.col_offset,
                    f"sort key {val.id} orders by "
                    + ("object address" if val.id == "id"
                       else "hash value")
                    + ", which differs across processes and PYTHONHASHSEED"
                    " values; sort by a stable domain key",
                )
            elif isinstance(val, ast.Lambda):
                for inner in ast.walk(val):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id in ("id", "hash")
                    ):
                        yield (
                            inner.lineno,
                            inner.col_offset,
                            f"sort key calls {inner.func.id}(): the order "
                            "follows object addresses/hash seeds, not the "
                            "domain; sort by a stable key",
                        )


def _is_dir_listing(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it is a directory-listing call."""
    if not isinstance(node, ast.Call):
        return None
    dotted = _dotted(node.func)
    if dotted in ("os.listdir", "listdir"):
        return f"{dotted}(...)"
    if isinstance(node.func, ast.Attribute) and node.func.attr == "iterdir":
        base = _dotted(node.func.value) or "<expr>"
        return f"{base}.iterdir()"
    return None


@register_rule(
    "unsorted-listdir",
    "directory listings (os.listdir / Path.iterdir) come back in "
    "filesystem order; iterate a sorted() copy",
)
def rule_unsorted_listdir(tree: ast.AST, path: str) -> Iterator[RuleHit]:
    # As in unordered-iter: a comprehension feeding an order-free
    # reducer (sorted(p.name for p in d.iterdir())) is already fixed.
    excused = set()
    for node in _walk(tree):
        if isinstance(node, ast.Call):
            fn = node.func
            name = fn.id if isinstance(fn, ast.Name) else None
            if name in _ORDER_FREE_REDUCERS or name == "sum":
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                        ast.SetComp, ast.DictComp)):
                        excused.update(id(c) for c in arg.generators)
    for node in _walk(tree):
        iters = []
        if isinstance(node, ast.For):
            iters = [(node.iter, node.iter.lineno, node.iter.col_offset)]
        elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                               ast.DictComp)):
            iters = [
                (c.iter, c.iter.lineno, c.iter.col_offset)
                for c in node.generators
                if id(c) not in excused
            ]
        for expr, line, col in iters:
            desc = _is_dir_listing(expr)
            if desc:
                yield (
                    line,
                    col,
                    f"iterating {desc} in filesystem return order; the "
                    "listing is not sorted on any platform guarantee — "
                    "iterate sorted(...) instead",
                )


#: Engine internals whose layout is a private contract of the event
#: loop: the shard coordinator manipulates them under documented
#: invariants, but any other reader couples itself to heap-tuple layout
#: and the zero-delay fast path, both of which are allowed to change.
_ENGINE_INTERNALS = {"_heap", "_now_queue", "_seq"}


@register_rule(
    "engine-internal-access",
    "no reads of Engine internals (_heap/_now_queue/_seq) outside "
    "repro.sim; schedule through the public Engine API",
)
def rule_engine_internal_access(tree: ast.AST, path: str) -> Iterator[RuleHit]:
    # The kernel package owns these fields (the shard coordinator in
    # repro.sim.shard reaches into member engines by design).
    normalized = path.replace("\\", "/")
    if "repro/sim/" in normalized or normalized.endswith("repro/sim"):
        return
    for node in _walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _ENGINE_INTERNALS
        ):
            base = _dotted(node.value) or "<expr>"
            yield (
                node.lineno,
                node.col_offset,
                f"{base}.{node.attr} reaches into the event-loop "
                "internals; their layout (heap tuples, the zero-delay "
                "fast path) is private to repro.sim — use the public "
                "Engine API (schedule/process/peek/run_window)",
            )


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CTORS = {"list", "dict", "set", "defaultdict", "deque"}


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = node.func.id if isinstance(node.func, ast.Name) else None
        return name in _MUTABLE_CTORS
    return False


@register_rule(
    "shared-state",
    "engine-shared mutable state must be instance-owned: no mutable "
    "default arguments and no mutable class-attribute literals",
)
def rule_shared_state(tree: ast.AST, path: str) -> Iterator[RuleHit]:
    for node in _walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_value(default):
                    yield (
                        default.lineno,
                        default.col_offset,
                        f"{node.name}() has a mutable default argument; "
                        "it is shared across every call — default to "
                        "None and allocate per call",
                    )
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                value = None
                if isinstance(stmt, ast.Assign):
                    targets = [
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    ]
                    if targets == ["__slots__"]:
                        continue
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    ann = (
                        ast.unparse(stmt.annotation)
                        if hasattr(ast, "unparse") else ""
                    )
                    if "ClassVar" in ann:
                        continue
                    value = stmt.value
                if value is not None and _is_mutable_value(value):
                    yield (
                        value.lineno,
                        value.col_offset,
                        f"class {node.name} binds a mutable literal as a "
                        "class attribute; it is shared by every instance "
                        "— assign in __init__ or use field(default_factory)",
                    )
