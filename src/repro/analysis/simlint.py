"""simlint: the repo's determinism lint pass.

Parses Python sources under the given paths, runs the rule catalog from
:mod:`repro.analysis.rules`, honors ``simlint: ignore`` suppression
comments, and reports :class:`~repro.analysis.findings.Finding`
objects.  The tier-1 suite lints the real ``src/`` tree and requires
zero unsuppressed findings, making determinism a standing CI gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.findings import Finding, Suppression, parse_suppressions
from repro.analysis.rules import RULES

__all__ = ["LintReport", "lint_source", "lint_paths"]


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def suppression_counts(self) -> Dict[str, int]:
        """``path:line`` of each suppression comment -> findings waived."""
        return {
            f"{s.path}:{s.comment_line}": s.matched for s in self.suppressions
        }

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_checked} file(s) checked"
        )
        return "\n".join(lines)


def _select_rules(rules: Optional[Sequence[str]]) -> Dict[str, object]:
    if rules is None:
        return dict(RULES)
    unknown = sorted(set(rules) - set(RULES))
    if unknown:
        raise ValueError(f"unknown rule id(s) {unknown}; known: {sorted(RULES)}")
    return {rid: RULES[rid] for rid in rules}


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint one source blob; suppression comments are honored."""
    report = LintReport(files_checked=1)
    selected = _select_rules(rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(path, exc.lineno or 0, exc.offset or 0, "syntax-error",
                    f"cannot parse: {exc.msg}")
        )
        return report
    suppressions = parse_suppressions(path, source)
    report.suppressions = suppressions
    raw: List[Finding] = []
    for rule_id, fn in selected.items():
        for line, col, message in fn(tree, path):
            raw.append(Finding(path, line, col, rule_id, message))
    for finding in sorted(raw):
        waiver = next((s for s in suppressions if s.covers(finding)), None)
        if waiver is not None:
            waiver.matched += 1
            waiver.matched_rules.append(finding.rule)
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    # A suppression that waived nothing is itself a defect: it hides the
    # rule from future readers while guarding dead code.  One that names
    # a rule id the catalog has never heard of is a typo.
    for s in suppressions:
        unknown = sorted(set(s.rules) - set(RULES) - {"*"})
        if unknown:
            report.findings.append(
                Finding(
                    path, s.comment_line, 0, "unknown-suppression",
                    f"suppression names unknown rule(s) {unknown}; "
                    f"known: {sorted(RULES)}",
                )
            )
        elif s.matched == 0 and ("*" in s.rules or set(s.rules) & set(selected)):
            report.findings.append(
                Finding(
                    path, s.comment_line, 0, "unused-suppression",
                    f"suppression for {', '.join(s.rules)} matched no "
                    "finding; delete it",
                )
            )
    report.findings.sort()
    return report


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")
    return sorted(set(out))


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    combined = LintReport()
    for file in iter_python_files(paths):
        one = lint_source(file.read_text(), str(file), rules=rules)
        combined.findings.extend(one.findings)
        combined.suppressed.extend(one.suppressed)
        combined.suppressions.extend(one.suppressions)
        combined.files_checked += 1
    combined.findings.sort()
    return combined
