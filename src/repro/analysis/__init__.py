"""Static-analysis gates for the reproduction.

Three analyzers keep the simulation's correctness invariants
machine-checked (see ``docs/ANALYSIS.md``):

* :mod:`repro.analysis.simlint` — AST determinism lint over the source
  tree (wall clocks, global RNGs, hash-order iteration, yieldless
  process bodies, shared mutable state),
* :mod:`repro.analysis.races` — opt-in same-instant race detection over
  registered shared resources (metadata stores, inode tables, the
  object store, client journals),
* :mod:`repro.analysis.checker` — composition/policy static checking
  against the mechanism dependency DAG before anything executes.

CLI: ``python -m repro.analysis src/`` (lint) and
``python -m repro.analysis check ...`` (compositions / policy sets).
"""

from repro.analysis.checker import (
    CheckError,
    CompositionError,
    MECHANISM_DEPENDENCIES,
    PolicySet,
    PolicySetError,
    check_inotable,
    check_plan,
    check_policy,
    check_policy_set,
    parse_policy_set,
    policy_set_warnings,
)
from repro.analysis.findings import Finding, Suppression
from repro.analysis.races import (
    Access,
    Race,
    RaceDetector,
    RaceError,
    watch_cluster,
)
from repro.analysis.rules import RULES, register_rule, rule_catalog
from repro.analysis.simlint import LintReport, lint_paths, lint_source

__all__ = [
    "Access",
    "CheckError",
    "CompositionError",
    "Finding",
    "LintReport",
    "MECHANISM_DEPENDENCIES",
    "PolicySet",
    "PolicySetError",
    "Race",
    "RaceDetector",
    "RaceError",
    "RULES",
    "Suppression",
    "check_inotable",
    "check_plan",
    "check_policy",
    "check_policy_set",
    "lint_paths",
    "lint_source",
    "parse_policy_set",
    "policy_set_warnings",
    "register_rule",
    "rule_catalog",
    "watch_cluster",
]
