"""Static-analysis gates for the reproduction.

Three analyzers keep the simulation's correctness invariants
machine-checked (see ``docs/ANALYSIS.md``):

* :mod:`repro.analysis.simlint` — AST determinism lint over the source
  tree (wall clocks, global RNGs, hash-order iteration, yieldless
  process bodies, shared mutable state),
* :mod:`repro.analysis.races` — opt-in same-instant race detection over
  registered shared resources (metadata stores, inode tables, the
  object store, client journals),
* :mod:`repro.analysis.checker` — composition/policy static checking
  against the mechanism dependency DAG before anything executes,
* :mod:`repro.analysis.model` — exhaustive small-scope model checker
  over Table I cells: every cross-client interleaving (plus a
  crash/recover branch per persist-relevant step) of a bounded
  workload is replayed through :mod:`repro.sim` under
  :class:`repro.analysis.schedule.ScheduleController` and judged by
  the conformance checkers, with a vector-clock DPOR-lite reduction
  from :mod:`repro.analysis.causality`.

CLI: ``python -m repro.analysis src/`` (lint),
``python -m repro.analysis check ...`` (compositions / policy sets)
and ``python -m repro.analysis model ...`` (interleaving exploration).
"""

from repro.analysis.checker import (
    CheckError,
    CompositionError,
    MECHANISM_DEPENDENCIES,
    PolicySet,
    PolicySetError,
    check_inotable,
    check_plan,
    check_policy,
    check_policy_set,
    parse_policy_set,
    policy_set_warnings,
)
from repro.analysis.causality import CausalityTracker, VectorClock
from repro.analysis.findings import Finding, Suppression
from repro.analysis.model import (
    MUTATIONS,
    Mutation,
    RunResult,
    crash_variants,
    explore_cell,
    explore_matrix,
    model_report_json,
    run_schedule,
    state_fingerprint,
)
from repro.analysis.races import (
    Access,
    Race,
    RaceDetector,
    RaceError,
    watch_cluster,
)
from repro.analysis.rules import RULES, register_rule, rule_catalog
from repro.analysis.schedule import Alternative, Decision, ScheduleController
from repro.analysis.simlint import LintReport, lint_paths, lint_source

__all__ = [
    "Access",
    "Alternative",
    "CausalityTracker",
    "CheckError",
    "CompositionError",
    "Decision",
    "Finding",
    "LintReport",
    "MECHANISM_DEPENDENCIES",
    "MUTATIONS",
    "Mutation",
    "PolicySet",
    "PolicySetError",
    "Race",
    "RaceDetector",
    "RaceError",
    "RULES",
    "RunResult",
    "ScheduleController",
    "Suppression",
    "VectorClock",
    "check_inotable",
    "check_plan",
    "check_policy",
    "check_policy_set",
    "crash_variants",
    "explore_cell",
    "explore_matrix",
    "lint_paths",
    "lint_source",
    "model_report_json",
    "parse_policy_set",
    "policy_set_warnings",
    "register_rule",
    "rule_catalog",
    "run_schedule",
    "state_fingerprint",
    "watch_cluster",
]
