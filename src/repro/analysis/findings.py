"""Finding and suppression primitives shared by the analyzers.

A :class:`Finding` is one diagnostic anchored to ``file:line:col`` with a
rule id; the CLI and the tier-1 repo-clean gate both consume them.
Suppressions are in-source waivers written as::

    engine.tick()  # simlint: ignore[<rule>] host-side progress meter

or, as a standalone comment, applying to the next source line::

    # simlint: ignore[<rule>] integer sum; order cannot reach output
    total = sum(sizes.values())

(with ``<rule>`` an actual rule id; the angle brackets here keep these
doc examples from registering as live suppressions).

Every suppression must name the rule(s) it waives; matches are counted so
reports can say how much is suppressed, and suppressions that never match
anything are themselves reported (rule ``unused-suppression``) to keep
stale waivers out of the tree.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["Finding", "Suppression", "parse_suppressions", "SUPPRESS_RE"]

SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore\[(?P<rules>[a-z0-9_*,\s-]+)\]"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and why."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class Suppression:
    """One ``# simlint: ignore[...]`` comment and its match bookkeeping."""

    path: str
    #: Line the comment sits on (1-based).
    comment_line: int
    #: Line whose findings it waives (same line, or the next for
    #: standalone comments).
    target_line: int
    rules: Tuple[str, ...]
    matched: int = 0
    #: Which rules actually matched (for unused-rule reporting).
    matched_rules: List[str] = field(default_factory=list)

    def covers(self, finding: Finding) -> bool:
        return (
            finding.line == self.target_line
            and ("*" in self.rules or finding.rule in self.rules)
        )


def parse_suppressions(path: str, source: str) -> List[Suppression]:
    """Extract every suppression comment from ``source``.

    A comment on a code line waives findings on that line; a comment on
    its own line waives findings on the following line.
    """
    out: List[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = SUPPRESS_RE.search(text)
        if m is None:
            continue
        rules = tuple(
            r.strip() for r in m.group("rules").split(",") if r.strip()
        )
        standalone = text.lstrip().startswith("#")
        target = lineno + 1 if standalone else lineno
        out.append(
            Suppression(
                path=path, comment_line=lineno, target_line=target, rules=rules
            )
        )
    return out
