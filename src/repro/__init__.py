"""Reproduction of *Cudele: An API and Framework for Programmable
Consistency and Durability in a Global Namespace* (IPDPS 2018).

The public API in one import::

    from repro import Cluster, Cudele, SubtreePolicy, Consistency, Durability

    cluster = Cluster()
    cudele = Cudele(cluster)
    ns = cluster.run(cudele.decouple(
        "/hpc/job1",
        SubtreePolicy(consistency="append_client_journal+volatile_apply",
                      durability="local_persist",
                      allocated_inodes=100_000),
    ))
    cluster.run(ns.create_many(100_000))   # ~11K creates/s, local
    cluster.run(ns.finalize())             # merge + persist

Subpackages: :mod:`repro.sim` (DES kernel), :mod:`repro.rados` (object
store), :mod:`repro.journal` (journal format/tool), :mod:`repro.mds`
(metadata server), :mod:`repro.client`, :mod:`repro.mon` (monitor),
:mod:`repro.core` (Cudele itself), :mod:`repro.workloads`,
:mod:`repro.bench` (experiment harness).
"""

from repro.cluster import Cluster
from repro.core import (
    Consistency,
    Cudele,
    DecoupledNamespace,
    Durability,
    SubtreePolicy,
    TABLE_I,
    composition_for,
    parse_composition,
    parse_policies,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Cudele",
    "DecoupledNamespace",
    "SubtreePolicy",
    "Consistency",
    "Durability",
    "TABLE_I",
    "composition_for",
    "parse_composition",
    "parse_policies",
    "__version__",
]
