"""Fault drill: ops lost and recovery latency per durability policy."""

import pytest

from repro.bench.experiments import faults
from repro.bench.report import format_result

from benchmarks.conftest import record


@pytest.mark.faults
def test_bench_faults(benchmark, scale):
    result = benchmark.pedantic(lambda: faults(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    record(benchmark, result)
    lost = result.get("ops lost")
    latency = result.get("recovery latency (s)")
    burst = result.meta["ops"]
    downtime = result.meta["downtime_s"]
    # The durability spectrum: 'none' loses the burst, the persisted
    # policies lose nothing.
    assert lost.at("none") == pytest.approx(burst)
    assert lost.at("local") == 0.0
    assert lost.at("global") == 0.0
    # Recovery always costs at least the downtime; the persisted
    # policies pay replay I/O on top.
    for policy in ("none", "local", "global"):
        assert latency.at(policy) >= downtime
    assert latency.at("local") > latency.at("none")
    assert latency.at("global") > latency.at("none")
