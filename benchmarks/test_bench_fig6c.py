"""Figure 6c: namespace-sync interval sweep (read-while-writing)."""

import pytest

from repro.bench.experiments import fig6c
from repro.bench.report import format_result

from benchmarks.conftest import record


def test_bench_fig6c(benchmark, scale):
    result = benchmark.pedantic(lambda: fig6c(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    record(benchmark, result)
    s = result.get("overhead %")
    assert s.at(1.0) == pytest.approx(9.0, abs=1.5)
    assert s.at(10.0) == pytest.approx(2.0, abs=1.0)
    assert s.at(max(scale.sync_intervals)) > s.at(10.0)
