"""Ablation: dedicated metadata servers via subtree partitioning.

The paper's opening motivation: "Applications perform better with
dedicated metadata servers [3], [4] but provisioning a metadata server
for every client is unreasonable."  This ablation quantifies both
halves on the simulated substrate: aggregate create throughput scales
with MDS ranks until the client population becomes the bottleneck —
after which extra ranks buy nothing.
"""

import pytest

from repro.bench.report import format_table
from repro.cluster import Cluster
from repro.mds.server import MDSConfig
from repro.sim.engine import AllOf

RANKS = [1, 2, 4, 8]
N_CLIENTS = 16


def run_rank_sweep(scale):
    ops = max(1000, scale.ops_per_client // 2)
    rows = []
    for num_mds in RANKS:
        cluster = Cluster(
            mds_config=MDSConfig(materialize=False, journal_enabled=False),
            num_mds=num_mds,
        )
        for i in range(N_CLIENTS):
            cluster.assign_subtree_mds(f"/grp{i}", i % num_mds)
        clients = [cluster.new_client() for _ in range(N_CLIENTS)]

        def worker(i):
            resp = yield cluster.engine.process(
                clients[i].create_many(f"/grp{i}/dir", ops)
            )
            assert resp.ok

        def job():
            yield AllOf(
                cluster.engine,
                [cluster.engine.process(worker(i)) for i in range(N_CLIENTS)],
            )

        t0 = cluster.now
        cluster.run(job())
        rows.append((num_mds, N_CLIENTS * ops / (cluster.now - t0)))
    return rows


def test_bench_ablation_multimds(benchmark, scale):
    rows = benchmark.pedantic(lambda: run_rank_sweep(scale), rounds=1,
                              iterations=1)
    print(f"\n== ablation: MDS ranks vs aggregate throughput "
          f"({N_CLIENTS} clients) ==")
    print(format_table(["mds ranks", "total creates/s"], rows))
    benchmark.extra_info["sweep"] = rows
    tput = dict(rows)
    assert tput[2] == pytest.approx(2 * tput[1], rel=0.1)
    # past the client ceiling (16 x 654/s), extra ranks are wasted —
    # the "provisioning an MDS per client is unreasonable" half.
    assert tput[8] == pytest.approx(tput[4], rel=0.05)
    assert tput[4] == pytest.approx(N_CLIENTS * 654, rel=0.1)
