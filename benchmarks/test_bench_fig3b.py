"""Figure 3b: interference slowdown and variability while scaling clients."""

from repro.bench.experiments import fig3b
from repro.bench.report import format_result

from benchmarks.conftest import record


def test_bench_fig3b(benchmark, scale):
    result = benchmark.pedantic(lambda: fig3b(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    record(benchmark, result)
    top = max(scale.clients)
    assert result.get("interference").at(top) > result.get("no interference").at(top)
