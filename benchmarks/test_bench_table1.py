"""Table I: end-to-end cost of every consistency/durability cell."""

import pytest

from repro.bench.experiments import table1
from repro.bench.report import format_result

from benchmarks.conftest import record


def test_bench_table1(benchmark, scale):
    result = benchmark.pedantic(lambda: table1(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    record(benchmark, result)
    s = result.get("relative cost")
    assert s.at("invisible/none") == pytest.approx(1.0)
    for d in ("none", "local", "global"):
        assert s.at(f"invisible/{d}") <= s.at(f"weak/{d}") <= s.at(f"strong/{d}")
