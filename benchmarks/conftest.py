"""Shared fixtures for the benchmark suite.

Each ``test_bench_*`` file regenerates one of the paper's tables or
figures.  ``REPRO_SCALE`` picks the sizing preset (default ``small``;
``paper`` for full-scale runs).  Benchmarks print their result tables —
run with ``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

import pytest

from repro.bench.scales import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale()


def record(benchmark, result):
    """Attach an ExperimentResult's numbers to the benchmark JSON."""
    benchmark.extra_info["exp_id"] = result.exp_id
    benchmark.extra_info["scale"] = result.meta.get("scale")
    for s in result.series:
        benchmark.extra_info[s.label] = list(zip(s.x, s.y))
