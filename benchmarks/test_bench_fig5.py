"""Figure 5: per-mechanism overhead of processing create events."""

import pytest

from repro.bench.experiments import fig5
from repro.bench.report import format_result

from benchmarks.conftest import record


def test_bench_fig5(benchmark, scale):
    result = benchmark.pedantic(lambda: fig5(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    record(benchmark, result)
    s = result.get("overhead")
    assert s.at("rpcs") == pytest.approx(17, rel=0.12)
    assert s.at("nonvolatile_apply") == pytest.approx(78, rel=0.15)
    assert s.at("rpcs") / s.at("volatile_apply") == pytest.approx(19.9, rel=0.1)
    assert s.at("POSIX") > s.at("BatchFS") > s.at("DeltaFS")
