"""Ablation: OSD count / replication vs Global Persist cost.

"the bandwidth of the object store can help mitigate the overheads of
globally persisting metadata updates" (paper §V-A): more OSDs means
more aggregate bandwidth for the striped journal push, while a higher
replication factor multiplies the write work.
"""

from repro.bench.report import format_table
from repro.cluster import Cluster
from repro.core.mechanisms import MechanismContext, run_mechanism
from repro.mds.server import MDSConfig

CONFIGS = [
    # (num_osds, replication)
    (1, 1),
    (3, 1),
    (3, 3),
    (6, 3),
    (12, 3),
]


def run_replication(scale):
    rows = []
    for num_osds, replication in CONFIGS:
        cluster = Cluster(
            num_osds=num_osds,
            replication=replication,
            mds_config=MDSConfig(materialize=False),
        )
        d = cluster.new_decoupled_client()
        cluster.run(d.create_many("/sub", scale.fig5_ops))
        ctx = MechanismContext(cluster, "/sub", d)
        t0 = cluster.now
        cluster.run(run_mechanism("global_persist", ctx))
        rows.append((f"{num_osds} osds, rep={replication}", cluster.now - t0))
    return rows


def test_bench_ablation_replication(benchmark, scale):
    rows = benchmark.pedantic(lambda: run_replication(scale), rounds=1, iterations=1)
    print("\n== ablation: Global Persist vs cluster size/replication ==")
    print(format_table(["config", "global persist (s)"], rows))
    benchmark.extra_info["sweep"] = rows
    t = dict(rows)
    # replication makes the push costlier; more OSDs claw it back
    assert t["3 osds, rep=3"] >= t["3 osds, rep=1"]
    assert t["12 osds, rep=3"] <= t["3 osds, rep=3"]
