"""Figure 3a: journaling dispatch-size slowdown while scaling clients."""

from repro.bench.experiments import fig3a
from repro.bench.report import format_result

from benchmarks.conftest import record


def test_bench_fig3a(benchmark, scale):
    result = benchmark.pedantic(lambda: fig3a(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    record(benchmark, result)
    top = max(scale.clients)
    assert result.get("no journal").at(top) <= result.get("segments=40").at(top)
    assert result.get("segments=30").at(top) > result.get("segments=1").at(top)
