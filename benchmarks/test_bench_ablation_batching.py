"""Ablation: merge granularity.

Decoupled namespaces win partly because clients "batch events into bulk
updates" (paper §V-B1).  This ablation merges the same journal in 1,
10, 100 and 1000 chunks: finer granularity pays the per-merge network
round trip and MDS dispatch more often, converging toward RPC-like
behaviour.
"""

from repro.bench.report import format_table
from repro.cluster import Cluster
from repro.core.merge import merge_journal
from repro.journal.events import WIRE_EVENT_BYTES
from repro.mds.server import MDSConfig

CHUNKS = [1, 10, 100, 1000]


def run_merge_granularity(scale):
    total = scale.fig5_ops
    rows = []
    base = None
    for chunks in CHUNKS:
        cluster = Cluster(mds_config=MDSConfig(materialize=False))
        per = max(1, total // chunks)

        def body():
            for _ in range(chunks):
                yield from cluster.network.send(
                    "dclient", cluster.mds.name, per * WIRE_EVENT_BYTES
                )
                yield from merge_journal(cluster.mds, "/sub", 5, count=per)

        t0 = cluster.now
        cluster.run(body())
        t = cluster.now - t0
        base = base or t
        rows.append((chunks, t, t / base))
    return rows


def test_bench_ablation_batching(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: run_merge_granularity(scale), rounds=1, iterations=1
    )
    print("\n== ablation: merge granularity (vs one bulk merge) ==")
    print(format_table(["merges", "time (s)", "relative"], rows))
    benchmark.extra_info["sweep"] = [(c, rel) for c, _, rel in rows]
    rel = [r for _, _, r in rows]
    # finer-grained merging is monotonically more expensive
    assert rel == sorted(rel)
    assert rel[-1] > rel[0]
