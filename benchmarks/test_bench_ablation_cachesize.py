"""Ablation: inode-cache capacity vs read throughput.

"caching with leases and replication are popular approaches ... for
random workloads larger than the cache extra RPCs hurt performance"
(paper §VI).  Sweep the MDS inode-cache size against a fixed namespace
and measure lookup throughput.
"""

from repro.bench.report import format_table
from repro.cluster import Cluster
from repro.mds.server import MDSConfig, Request

NAMESPACE = 200_000
LOOKUPS = 5_000
CACHES = [400_000, 200_000, 100_000, 50_000, 25_000]


def run_cache_sweep(scale):
    rows = []
    for cache in CACHES:
        cluster = Cluster(
            mds_config=MDSConfig(
                materialize=False, service_jitter_cv=0.0,
                journal_enabled=False, inode_cache_entries=cache,
            )
        )
        done = cluster.mds.submit(Request("create", "/ns", 1, count=NAMESPACE))
        cluster.run()
        assert done.value.ok
        t0 = cluster.now
        done = cluster.mds.submit(
            Request("lookup", "/ns/probe", 2, count=LOOKUPS)
        )
        cluster.run()
        rows.append((cache, LOOKUPS / (cluster.now - t0)))
    return rows


def test_bench_ablation_cachesize(benchmark, scale):
    rows = benchmark.pedantic(lambda: run_cache_sweep(scale), rounds=1,
                              iterations=1)
    print("\n== ablation: inode-cache size vs lookup throughput "
          f"(namespace = {NAMESPACE:,} inodes) ==")
    print(format_table(["cache entries", "lookups/s"], rows))
    benchmark.extra_info["sweep"] = rows
    tput = dict(rows)
    # cache >= namespace: full speed; throughput degrades monotonically
    assert tput[400_000] > tput[100_000] > tput[25_000]
    assert tput[400_000] / tput[25_000] > 1.5
