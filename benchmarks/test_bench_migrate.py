"""Migration: client-observed latency through a live subtree handoff."""

import pytest

from repro.bench.experiments import migrate
from repro.bench.report import format_result

from benchmarks.conftest import record


def test_bench_migrate(benchmark, scale):
    result = benchmark.pedantic(lambda: migrate(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    record(benchmark, result)
    p50, p99 = result.get("p50"), result.get("p99")
    # The handoff costs latency only inside its own window, and the
    # spike is bounded (a freeze + transfer + one redirect round trip,
    # not seconds of unavailability).
    assert p99.at("during") > 2 * p99.at("before")
    assert p99.at("during") < 100.0  # ms
    # Traffic never stops, and the new authority serves at the old
    # baseline.
    assert p50.at("after") == pytest.approx(p50.at("before"), rel=0.05)
    assert all(n > 0 for n in result.meta["window_ops"].values())
