"""Figure 3c: capability revocation turns local lookups into RPCs."""

from repro.bench.experiments import fig3c
from repro.bench.report import format_result

from benchmarks.conftest import record


def test_bench_fig3c(benchmark, scale):
    result = benchmark.pedantic(lambda: fig3c(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    record(benchmark, result)
    lk = result.get("lookups/s (interference)")
    third = len(lk.y) // 3
    assert sum(lk.y[third:]) > sum(lk.y[:third])
    assert sum(result.get("lookups/s (no interference)").y) == 0
