"""Ablation: journal dispatch-window size sweep.

Extends Figure 3a's three plotted sizes to a full sweep, verifying the
model's claims: dispatch 1 is cheapest, mid sizes peak, and very large
windows "approach a dispatch size of 1" (paper §II-A).
"""

from repro.bench.report import format_table
from repro.cluster import Cluster
from repro.mds.server import MDSConfig
from repro.workloads.createheavy import parallel_creates_rpc

SWEEP = [1, 5, 10, 18, 30, 40, 80, 200]


def run_sweep(scale):
    clients = max(scale.clients)
    rows = []
    base = None
    for dispatch in SWEEP:
        cluster = Cluster(
            mds_config=MDSConfig(dispatch_size=dispatch, materialize=False)
        )
        res = cluster.run(
            parallel_creates_rpc(
                cluster, clients, scale.ops_per_client, batch=scale.batch
            )
        )
        t = res.slowest_client_time
        base = base or t
        rows.append((dispatch, t, t / base))
    return rows


def test_bench_ablation_dispatch(benchmark, scale):
    rows = benchmark.pedantic(lambda: run_sweep(scale), rounds=1, iterations=1)
    print("\n== ablation: dispatch window sweep (vs dispatch=1) ==")
    print(format_table(["dispatch", "slowest client (s)", "relative"], rows))
    benchmark.extra_info["sweep"] = [(d, rel) for d, _, rel in rows]
    rel = {d: r for d, _, r in rows}
    # mid sizes worst, huge windows converge back to dispatch-1 cost
    peak = max(rel.values())
    assert rel[18] == peak or rel[30] == peak or rel[10] == peak
    assert rel[200] < rel[18]
    assert abs(rel[200] - 1.0) < 0.1
