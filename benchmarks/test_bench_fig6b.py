"""Figure 6b: the allow/block interfere policy isolates directories."""

from repro.bench.experiments import fig6b
from repro.bench.report import format_result

from benchmarks.conftest import record


def test_bench_fig6b(benchmark, scale):
    result = benchmark.pedantic(lambda: fig6b(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    for k, v in sorted(result.meta.items()):
        if k.startswith(("slowdown", "sigma")):
            print(f"{k} = {v:.3f}")
    record(benchmark, result)
    top = max(scale.clients)
    none_v = result.get("no interference").at(top)
    allow_v = result.get("interference").at(top)
    block_v = result.get("block interference").at(top)
    assert allow_v > none_v
    assert abs(block_v - none_v) < 0.5 * (allow_v - none_v)
