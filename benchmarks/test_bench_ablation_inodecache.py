"""Ablation: the inode cache's effect on the create path.

"If a client has the directory inode cached it can do metadata writes
(e.g., create) with a single RPC.  If the client is not caching the
directory inode then it must do an extra RPC" (paper §II-B).  This
ablation measures the 1-RPC vs 2-RPC create directly by pre-poisoning
the capability state.
"""

import pytest

from repro.bench.report import format_table
from repro.cluster import Cluster
from repro.mds.server import MDSConfig
from repro.workloads.createheavy import parallel_creates_rpc


def run_cache_ablation(scale):
    ops = scale.ops_per_client

    # cached: sole writer keeps the exclusive cap the whole run
    cluster = Cluster(mds_config=MDSConfig(materialize=False))
    res = cluster.run(parallel_creates_rpc(cluster, 1, ops, batch=scale.batch))
    cached_t = res.slowest_client_time

    # uncached: a second writer shares every directory up front, so the
    # cap is revoked and every create pays the lookup
    cluster = Cluster(mds_config=MDSConfig(materialize=False))
    poison = cluster.new_client()
    cluster.run(poison.create_many("/dirs/dir0", 1))
    res = cluster.run(parallel_creates_rpc(cluster, 1, ops, batch=scale.batch))
    uncached_t = res.slowest_client_time
    return cached_t, uncached_t


def test_bench_ablation_inodecache(benchmark, scale):
    cached_t, uncached_t = benchmark.pedantic(
        lambda: run_cache_ablation(scale), rounds=1, iterations=1
    )
    ratio = uncached_t / cached_t
    print("\n== ablation: inode cache on the create path ==")
    print(format_table(
        ["config", "time (s)", "relative"],
        [("cached dir inode (1 RPC)", cached_t, 1.0),
         ("revoked cap (2 RPCs)", uncached_t, ratio)],
    ))
    benchmark.extra_info["ratio"] = ratio
    # an extra synchronous RPC roughly doubles the per-create cost
    assert ratio == pytest.approx(1.9, rel=0.15)
