"""Figure 6a: parallel creates under RPC / decoupled / decoupled+merge."""

import pytest

from repro.bench.experiments import fig6a
from repro.bench.report import format_result

from benchmarks.conftest import record


def test_bench_fig6a(benchmark, scale):
    result = benchmark.pedantic(lambda: fig6a(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    record(benchmark, result)
    top = max(scale.clients)
    rpc = result.get("rpcs").at(top)
    merge = result.get("decoupled: create+merge").at(top)
    create = result.get("decoupled: create").at(top)
    assert rpc < merge < create
    if top >= 20:
        assert create == pytest.approx(91.7, rel=0.1)  # paper headline
        assert rpc == pytest.approx(4.5, rel=0.25)
        assert merge / rpc == pytest.approx(3.37, rel=0.5)
