"""Figure 2: MDS resource utilization across compile phases."""

from repro.bench.experiments import fig2
from repro.bench.report import format_result

from benchmarks.conftest import record


def test_bench_fig2(benchmark, scale):
    result = benchmark.pedantic(lambda: fig2(scale), rounds=1, iterations=1)
    print("\n" + format_result(result))
    record(benchmark, result)
    cpu = result.get("mds cpu")
    assert cpu.at("untar") > cpu.at("configure")
    assert cpu.at("untar") > cpu.at("make")
